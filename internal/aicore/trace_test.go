package aicore

import (
	"bytes"
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
)

// tracedChain builds the RAW program of TestHazardTiming on a traced core:
// an MTE2 copy into a, then a vector read of a.
func tracedChain(t *testing.T) (*Core, *Stats) {
	t.Helper()
	c := newCore()
	c.Trace = &Trace{}
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	d := ub.MustAlloc(4096)
	p := cce.New("raw")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)
	p.EmitVec(isa.VCopy, isa.Contig(isa.UB, d), isa.Contig(isa.UB, a), isa.Operand{}, 0, isa.FullMask(), 16)
	st, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func TestTraceResetKeepsCapacity(t *testing.T) {
	c, _ := tracedChain(t)
	if len(c.Trace.Entries) != 2 {
		t.Fatalf("entries: %d", len(c.Trace.Entries))
	}
	before := cap(c.Trace.Entries)
	c.Trace.Reset()
	if len(c.Trace.Entries) != 0 {
		t.Errorf("entries after Reset: %d", len(c.Trace.Entries))
	}
	if cap(c.Trace.Entries) != before {
		t.Errorf("Reset dropped capacity: %d -> %d", before, cap(c.Trace.Entries))
	}
}

func TestTraceAccumulatesWithoutReset(t *testing.T) {
	// Without Reset a trace grows across runs — the documented contract
	// that Plan.Run relies on Reset to counter.
	c := newCore()
	c.Trace = &Trace{}
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	p := cce.New("dup")
	p.EmitDup(isa.UB, a, 1024, fp16.One)
	for i := 1; i <= 3; i++ {
		if _, err := c.Run(p); err != nil {
			t.Fatal(err)
		}
		if len(c.Trace.Entries) != i {
			t.Fatalf("run %d: entries = %d", i, len(c.Trace.Entries))
		}
	}
}

func TestStallAttributionRAW(t *testing.T) {
	c, st := tracedChain(t)
	first, second := c.Trace.Entries[0], c.Trace.Entries[1]
	if first.Stall.Cause != StallNone || first.Stall.Cycles != 0 {
		t.Errorf("first instr stall = %s", first.Stall)
	}
	if second.Stall.Cause != StallRAW {
		t.Fatalf("RAW chain attributed %s", second.Stall)
	}
	if second.Stall.Buf != isa.UB || second.Stall.Producer != 0 {
		t.Errorf("RAW blame: buf %v producer %d", second.Stall.Buf, second.Stall.Producer)
	}
	// The vector pipe was free from cycle 0, so the whole wait for the
	// copy is the attributed gap: start - 0 cycles.
	if second.Stall.Cycles != second.Start {
		t.Errorf("RAW stall %d cycles, issue gap %d", second.Stall.Cycles, second.Start)
	}
	if second.End != st.Cycles {
		t.Errorf("last entry ends at %d, makespan %d", second.End, st.Cycles)
	}
}

func TestStallAttributionPipeBusy(t *testing.T) {
	c := newCore()
	c.Trace = &Trace{}
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	b := ub.MustAlloc(4096)
	p := cce.New("serial-mte2")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)
	p.EmitCopy(isa.GM, 4096, isa.UB, b, 4096)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	second := c.Trace.Entries[1]
	// Back-to-back on one pipe: no issue gap, so zero stall cycles, and
	// the cause records that the pipe itself was the constraint.
	if second.Stall.Cause != StallPipeBusy || second.Stall.Cycles != 0 {
		t.Errorf("second copy stall = %s", second.Stall)
	}
}

func TestStallAttributionBarrier(t *testing.T) {
	c := newCore()
	c.Trace = &Trace{}
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	b := ub.MustAlloc(4096)
	p := cce.New("barrier")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)
	p.EmitBarrier()
	p.EmitDup(isa.UB, b, 1024, fp16.One)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	var barrier, dup *TraceEntry
	for i := range c.Trace.Entries {
		e := &c.Trace.Entries[i]
		switch {
		case e.Kind == KindBarrier:
			barrier = e
		case e.Pipe == isa.PipeVector:
			dup = e
		}
	}
	if barrier == nil || dup == nil {
		t.Fatalf("missing entries in %d-entry trace", len(c.Trace.Entries))
	}
	if barrier.Stall.Cause != StallBarrier || barrier.Stall.Cycles == 0 {
		t.Errorf("barrier stall = %s (want barrier wait for the copy)", barrier.Stall)
	}
	if dup.Stall.Cause != StallBarrier || dup.Stall.Cycles == 0 {
		t.Errorf("post-barrier dup stall = %s", dup.Stall)
	}
	if dup.Start < barrier.End {
		t.Errorf("dup issued at %d, before barrier end %d", dup.Start, barrier.End)
	}
}

func TestStallAttributionFlagWait(t *testing.T) {
	c := New(buffer.Config{}, nil)
	c.Trace = &Trace{}
	p, _, _ := buildChain(c)
	synced := cce.AutoSync(p)
	if _, err := c.RunExplicit(synced); err != nil {
		t.Fatal(err)
	}
	waits, stalled := 0, 0
	for _, e := range c.Trace.Entries {
		if e.Kind != KindWaitFlag {
			continue
		}
		waits++
		if e.Stall.Cycles == 0 {
			continue
		}
		stalled++
		if e.Stall.Cause != StallFlagWait {
			t.Errorf("wait %d attributed %s", e.Idx, e.Stall)
		}
		if e.Stall.Producer < 0 {
			t.Errorf("wait %d has no setter", e.Idx)
			continue
		}
		var setter *TraceEntry
		for i := range c.Trace.Entries {
			if c.Trace.Entries[i].Idx == e.Stall.Producer {
				setter = &c.Trace.Entries[i]
			}
		}
		if setter == nil || setter.Kind != KindSetFlag || setter.Flag != e.Flag {
			t.Errorf("wait %d blames idx %d, which is not the matching set_flag", e.Idx, e.Stall.Producer)
		}
	}
	if waits == 0 {
		t.Fatal("AutoSync produced no wait_flag entries")
	}
	if stalled == 0 {
		t.Error("no wait_flag ever stalled; attribution untested")
	}
}

func TestGanttBoundaryColumn(t *testing.T) {
	// A zero-cost entry issued exactly at the makespan must still render
	// in the last column instead of being silently dropped (lo == width).
	tr := &Trace{Entries: []TraceEntry{
		{Idx: 0, Pipe: isa.PipeVector, Start: 0, End: 100, Text: "vec"},
		{Idx: 1, Pipe: isa.PipeScalar, Start: 100, End: 100, Text: "scalar"},
	}}
	var buf bytes.Buffer
	tr.Gantt(&buf, 10)
	lines := strings.Split(buf.String(), "\n")
	var scalar string
	for _, l := range lines {
		if strings.HasPrefix(l, isa.PipeScalar.String()) {
			scalar = l
		}
	}
	if scalar == "" {
		t.Fatalf("no scalar row in:\n%s", buf.String())
	}
	cols := scalar[strings.Index(scalar, "|")+1 : strings.LastIndex(scalar, "|")]
	if !strings.HasSuffix(cols, "#") {
		t.Errorf("boundary entry not in last column: %q", cols)
	}
	if strings.Count(cols, "#") != 1 {
		t.Errorf("zero-cost entry should fill exactly one column: %q", cols)
	}
}

func TestGanttZeroWidthRequest(t *testing.T) {
	tr := &Trace{Entries: []TraceEntry{{Pipe: isa.PipeVector, Start: 0, End: 10, Text: "v"}}}
	var buf bytes.Buffer
	tr.Gantt(&buf, 0) // clamped to the minimum width, must not panic
	if !strings.Contains(buf.String(), "cycles 10") {
		t.Errorf("gantt at width 0:\n%s", buf.String())
	}
}

func TestTraceEmptyEdgeCases(t *testing.T) {
	var tr Trace
	if tr.Makespan() != 0 {
		t.Errorf("empty makespan %d", tr.Makespan())
	}
	for p, u := range tr.Utilization() {
		if u != 0 {
			t.Errorf("empty utilization[%v] = %v", isa.Pipe(p), u)
		}
	}
	var buf bytes.Buffer
	tr.Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not reported")
	}
}

func TestTraceSinglePipe(t *testing.T) {
	c := newCore()
	c.Trace = &Trace{}
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	p := cce.New("vec-only")
	p.EmitDup(isa.UB, a, 1024, fp16.One)
	p.EmitDup(isa.UB, a, 1024, fp16.One)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	util := c.Trace.Utilization()
	if util[isa.PipeVector] != 1 {
		t.Errorf("single-pipe utilization = %v, want 1", util[isa.PipeVector])
	}
	for p, u := range util {
		if isa.Pipe(p) != isa.PipeVector && u != 0 {
			t.Errorf("idle pipe %v utilization %v", isa.Pipe(p), u)
		}
	}
}
