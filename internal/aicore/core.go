// Package aicore simulates one DaVinci AI Core executing a CCE program:
// functionally (instructions transform bytes in the simulated buffers) and
// temporally (a timing model charges cycles per instruction and overlaps
// the Scalar, Vector, Cube and MTE pipelines subject to data hazards,
// mirroring the synchronized multi-pipeline execution of §III-A).
package aicore

import (
	"errors"
	"fmt"
	"sort"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
)

// ErrInterrupted is returned (wrapped with the program position) when a
// run is abandoned because the core's Cancel channel closed — a chip-level
// abort after another core failed, or a watchdog reclaiming a hung tile.
var ErrInterrupted = errors.New("interrupted")

// Core is one AI Core: a memory system plus a timing configuration.
type Core struct {
	Mem  *buffer.Set
	Cost *isa.CostModel
	// Serialize disables pipeline overlap (every instruction waits for
	// the previous one); used by the scheduling ablation benchmarks.
	Serialize bool
	// Trace, when non-nil, records every scheduled instruction for
	// timeline visualization.
	Trace *Trace
	// Strict enables the static verifier (internal/lint): every program
	// is linted against this core's buffer capacities before execution,
	// and any error-severity finding aborts the run. Opt-in because the
	// analysis is quadratic in instruction count.
	Strict bool
	// OnProgram, when non-nil, observes every program handed to Run or
	// RunExplicit before execution. cmd/davinci-lint uses it to capture
	// the instruction streams the kernels emit for offline linting.
	OnProgram func(*cce.Program)
	// Cancel, when non-nil, cooperatively interrupts execution: every
	// instruction loop polls it and returns ErrInterrupted once it is
	// closed. The chip layer points it at a per-attempt context so a
	// run-wide abort or a per-tile watchdog can reclaim a core that is
	// mid-program (or hung inside a blocking hook).
	Cancel <-chan struct{}
	// OnInstr, when non-nil, observes every instruction immediately before
	// its functional execution on the interpreted paths (Run, Replay,
	// ExecOnly, RunExplicit); a non-nil error aborts the run. The fault
	// injector (internal/faults) uses it to perturb runs at a chosen
	// instruction. The flattened fast path does not consult it, so plans
	// interpret the program while a hook is armed (see ops.Plan).
	OnInstr func(idx int, in isa.Instr) error
	// ReplayWith, when non-nil, replaces cached-program execution in
	// ops.Plan.Run: the plan binds inputs and reads outputs as usual but
	// delegates the replay itself to this hook. The fault injector uses it
	// to run a perturbed copy of the program (e.g. with a set_flag
	// dropped) under explicit synchronization semantics.
	ReplayWith func(*cce.Program) (*Stats, error)
	// HangOnDeadlock makes RunExplicit model a deadlocked program the way
	// hardware would — spinning forever on the unsatisfied wait_flag —
	// by blocking on Cancel before returning the DeadlockError. Without a
	// Cancel channel the error returns immediately.
	HangOnDeadlock bool
}

// interrupted polls the Cancel channel without blocking.
func (c *Core) interrupted() bool {
	if c.Cancel == nil {
		return false
	}
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// lintStrict runs the static verifier over prog with the core's buffer
// capacities, failing on any error-severity diagnostic.
func (c *Core) lintStrict(prog *cce.Program, mode lint.SyncMode) error {
	diags := lint.CheckWith(lint.Options{Caps: c.Mem.Capacities(), Mode: mode}, prog)
	if errs := lint.Errors(diags); len(errs) > 0 {
		return fmt.Errorf("aicore: %s: strict lint: %d error(s), first: %s", prog.Name, len(errs), errs[0])
	}
	return nil
}

// New creates a core with the given buffer configuration and cost model.
// A nil cost model takes the calibrated default.
func New(cfg buffer.Config, cost *isa.CostModel) *Core {
	if cost == nil {
		cost = isa.DefaultCostModel()
	}
	return &Core{Mem: buffer.NewSet(cfg), Cost: cost}
}

// Stats aggregates the timing outcome of one or more program runs.
type Stats struct {
	// Cycles is the makespan: the completion time of the last instruction.
	Cycles int64
	// PipeBusy is the total busy time per pipeline.
	PipeBusy [isa.NumPipes]int64
	// PipeInstrs is the instruction count per pipeline.
	PipeInstrs [isa.NumPipes]int64
	// Instrs is the total instruction count.
	Instrs int64
	// BytesIn is the global-memory read traffic (MTE2 payload).
	BytesIn int64
	// BytesOut is the global-memory write traffic (MTE3 payload).
	BytesOut int64
}

// AddSerial accumulates o as if it ran after s (cycles add).
func (s *Stats) AddSerial(o *Stats) {
	s.Cycles += o.Cycles
	s.Instrs += o.Instrs
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	for i := range s.PipeBusy {
		s.PipeBusy[i] += o.PipeBusy[i]
		s.PipeInstrs[i] += o.PipeInstrs[i]
	}
}

// AddParallel accumulates o as if it ran concurrently with s on another
// core (cycles take the maximum, work adds).
func (s *Stats) AddParallel(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.Instrs += o.Instrs
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	for i := range s.PipeBusy {
		s.PipeBusy[i] += o.PipeBusy[i]
		s.PipeInstrs[i] += o.PipeInstrs[i]
	}
}

func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d instrs=%d vec=%d(%dcyc) mte1=%d mte2=%d mte3=%d cube=%d",
		s.Cycles, s.Instrs,
		s.PipeInstrs[isa.PipeVector], s.PipeBusy[isa.PipeVector],
		s.PipeInstrs[isa.PipeMTE1], s.PipeInstrs[isa.PipeMTE2],
		s.PipeInstrs[isa.PipeMTE3], s.PipeInstrs[isa.PipeCube])
}

// interval is a byte range with the completion time and instruction index
// of its last accessor (the index feeds stall attribution).
type interval struct {
	off, end int
	t        int64
	idx      int
}

// bufTimes tracks recent reads and writes of one buffer for hazard
// resolution. Histories are bounded: old entries fold into a floor time
// that conservatively applies to the whole buffer (by then execution has
// advanced past it, so precision is only needed for recent accesses).
type bufTimes struct {
	writes, reads  []interval
	floorW, floorR int64
}

const historyCap = 96

func foldOldest(list []interval, floor *int64) []interval {
	// Fold the older half (by completion time) into the floor.
	sort.Slice(list, func(i, j int) bool { return list[i].t < list[j].t })
	half := len(list) / 2
	for _, iv := range list[:half] {
		if iv.t > *floor {
			*floor = iv.t
		}
	}
	return append(list[:0], list[half:]...)
}

func (b *bufTimes) lastOverlap(list []interval, r isa.Region) (int64, int) {
	var t int64
	idx := -1
	for _, iv := range list {
		if iv.off < r.End && r.Off < iv.end && iv.t > t {
			t, idx = iv.t, iv.idx
		}
	}
	return t, idx
}

// Run validates, executes and times prog, returning its stats. Functional
// state (buffer contents) reflects the completed program.
func (c *Core) Run(prog *cce.Program) (*Stats, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if c.OnProgram != nil {
		c.OnProgram(prog)
	}
	if c.Strict {
		// Run's scoreboard orders hazards implicitly, so verify the
		// implicit-sync contract (bounds, invariants, flag protocol).
		if err := c.lintStrict(prog, lint.SyncImplicit); err != nil {
			return nil, err
		}
	}
	return c.schedule(prog)
}

// Replay executes and times a pre-compiled program, skipping per-run
// validation and strict linting: a plan (internal/ops) validates — and, for
// strict specs, lints — the instruction stream once at compile time, so
// replaying it on every tile must not pay that cost again. Timing and
// functional semantics are identical to Run.
func (c *Core) Replay(prog *cce.Program) (*Stats, error) {
	if c.OnProgram != nil {
		c.OnProgram(prog)
	}
	return c.schedule(prog)
}

// ExecOnly executes prog functionally — in program order, like Run — but
// computes no schedule and no stats. Plans use it when the timing of the
// (shape-deterministic) program is already memoized from an earlier replay
// under the same cost model, which makes repeated tiles pure data work.
func (c *Core) ExecOnly(prog *cce.Program) error {
	if c.OnProgram != nil {
		c.OnProgram(prog)
	}
	for idx, in := range prog.Instrs {
		if c.interrupted() {
			return fmt.Errorf("aicore: %s instr %d: %w", prog.Name, idx, ErrInterrupted)
		}
		if c.OnInstr != nil {
			if err := c.OnInstr(idx, in); err != nil {
				return fmt.Errorf("aicore: %s instr %d (%s): %w", prog.Name, idx, in, err)
			}
		}
		if err := c.exec(in); err != nil {
			return fmt.Errorf("aicore: %s instr %d (%s): %w", prog.Name, idx, in, err)
		}
	}
	return nil
}

// schedule is the shared body of Run and Replay: functional execution in
// program order plus the implicit-sync timing scoreboard (see board, which
// also backs the static Time oracle). Every start time the board computes
// is identical to the pre-attribution scoreboard: a barrier raises a floor
// proposed to every later instruction instead of rewriting pipeFree, which
// yields the same maximum while letting the wait surface as an attributed
// stall on the pipe that actually pays it.
func (c *Core) schedule(prog *cce.Program) (*Stats, error) {
	stats := &Stats{}
	board := newBoard(c.Cost, c.Serialize)
	if c.Trace != nil {
		c.Trace.grow(len(prog.Instrs))
	}

	for idx, in := range prog.Instrs {
		if c.interrupted() {
			return nil, fmt.Errorf("aicore: %s instr %d: %w", prog.Name, idx, ErrInterrupted)
		}
		if c.OnInstr != nil {
			if err := c.OnInstr(idx, in); err != nil {
				return nil, fmt.Errorf("aicore: %s instr %d (%s): %w", prog.Name, idx, in, err)
			}
		}
		// Functional execution in program order. In-order issue per pipe
		// plus hazard-respecting start times make this equivalent to the
		// timed order for data.
		if err := c.exec(in); err != nil {
			return nil, fmt.Errorf("aicore: %s instr %d (%s): %w", prog.Name, idx, in, err)
		}

		pipe := in.Pipe()
		cost := in.Cycles(c.Cost)
		tr := newStallTracker()
		start, end, stall := board.place(in, idx, &tr)

		if c.Trace != nil {
			c.Trace.record(idx, in, start, end, stall)
		}
		stats.PipeBusy[pipe] += cost
		stats.PipeInstrs[pipe]++
		stats.Instrs++
		if cp, ok := in.(*isa.CopyInstr); ok {
			switch pipe {
			case isa.PipeMTE2:
				stats.BytesIn += int64(cp.Bytes())
			case isa.PipeMTE3:
				stats.BytesOut += int64(cp.Bytes())
			}
		}
	}
	stats.Cycles = board.cycles
	return stats, nil
}
