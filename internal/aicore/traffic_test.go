package aicore

import (
	"bytes"
	"strings"
	"testing"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
)

func TestGlobalMemoryTrafficAccounting(t *testing.T) {
	c := New(buffer.Config{}, nil)
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	b := ub.MustAlloc(4096)
	p := cce.New("traffic")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)    // in: 4096
	p.EmitCopy(isa.GM, 8192, isa.L1, 0, 1024) // in: 1024
	p.EmitCopy(isa.UB, a, isa.UB, b, 2048)    // local: not GM traffic
	p.EmitCopy(isa.UB, b, isa.GM, 16384, 512) // out: 512
	st, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesIn != 5120 {
		t.Errorf("BytesIn = %d, want 5120", st.BytesIn)
	}
	if st.BytesOut != 512 {
		t.Errorf("BytesOut = %d, want 512", st.BytesOut)
	}

	// Aggregation carries traffic.
	sum := &Stats{}
	sum.AddSerial(st)
	sum.AddParallel(st)
	if sum.BytesIn != 2*st.BytesIn || sum.BytesOut != 2*st.BytesOut {
		t.Errorf("aggregated traffic wrong: %+v", sum)
	}
}

// The im2col forward kernel's defining property versus the standard one is
// that its extra data movement happens between local buffers (L1 -> UB via
// the SCU), not against global memory: both variants read the input once
// and write the output once.
func TestTrafficSymmetryAcrossVariants(t *testing.T) {
	// Exercised at ops level; here we just confirm bursty copies count
	// full payloads.
	c := New(buffer.Config{}, nil)
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(8192)
	p := cce.New("bursts")
	p.Emit(&isa.CopyInstr{SrcBuf: isa.GM, SrcAddr: 0, DstBuf: isa.UB, DstAddr: a,
		NBurst: 4, BurstBytes: 2048, SrcGap: 512})
	st, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesIn != 4*2048 {
		t.Errorf("bursty BytesIn = %d", st.BytesIn)
	}
}

func TestTraceRecordsSchedule(t *testing.T) {
	c := New(buffer.Config{}, nil)
	c.Trace = &Trace{}
	ub := c.Mem.Space(isa.UB)
	a := ub.MustAlloc(4096)
	p := cce.New("traced")
	p.EmitCopy(isa.GM, 0, isa.UB, a, 4096)
	p.EmitDup(isa.UB, a, 1024, 0x3c00)
	st, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Trace.Entries) != 2 {
		t.Fatalf("trace entries: %d", len(c.Trace.Entries))
	}
	if c.Trace.Makespan() != st.Cycles {
		t.Errorf("trace makespan %d vs stats %d", c.Trace.Makespan(), st.Cycles)
	}
	util := c.Trace.Utilization()
	if util[isa.PipeMTE2] <= 0 || util[isa.PipeVector] <= 0 {
		t.Errorf("utilization %v", util)
	}
	var buf bytes.Buffer
	c.Trace.Gantt(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "MTE2") || !strings.Contains(out, "#") {
		t.Errorf("gantt output:\n%s", out)
	}
	// Empty trace renders gracefully.
	var empty Trace
	buf.Reset()
	empty.Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not handled")
	}
}
