package tensor

import (
	"fmt"

	"davinci/internal/fp16"
)

// C1Of returns C1 = ceil(c / C0), the channel-split count of the fractal
// layout (paper §III-B).
func C1Of(c int) int { return (c + C0 - 1) / C0 }

// NewNCHW allocates an (N,C,H,W) tensor.
func NewNCHW(n, c, h, w int) *Tensor { return New(n, c, h, w) }

// NewFractal allocates an (N,C1,H,W,C0) tensor for c logical channels;
// the C0 tail beyond c is zero padding.
func NewFractal(n, c, h, w int) *Tensor { return New(n, C1Of(c), h, w, C0) }

// ToFractal converts an NCHW tensor to the fractal NC1HWC0 layout, zero
// padding the channel dimension up to a multiple of C0 (paper §III-B).
func ToFractal(t *Tensor) *Tensor {
	if len(t.Shape) != 4 {
		panic(fmt.Sprintf("tensor: ToFractal wants NCHW, got shape %v", t.Shape))
	}
	n, c, h, w := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	out := NewFractal(n, c, h, w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			c1, c0 := ci/C0, ci%C0
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					out.Set(t.At(ni, ci, hi, wi), ni, c1, hi, wi, c0)
				}
			}
		}
	}
	return out
}

// FromFractal converts an NC1HWC0 tensor back to NCHW with c logical
// channels (dropping channel padding).
func FromFractal(t *Tensor, c int) *Tensor {
	if len(t.Shape) != 5 || t.Shape[4] != C0 {
		panic(fmt.Sprintf("tensor: FromFractal wants NC1HWC0, got shape %v", t.Shape))
	}
	n, c1, h, w := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	if C1Of(c) != c1 {
		panic(fmt.Sprintf("tensor: %d channels inconsistent with C1=%d", c, c1))
	}
	out := NewNCHW(n, c, h, w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					out.Set(t.At(ni, ci/C0, hi, wi, ci%C0), ni, ci, hi, wi)
				}
			}
		}
	}
	return out
}

// NewIm2colFractal allocates the (N,C1,Kh,Kw,Oh,Ow,C0) tensor produced by
// Im2Col loads in repeat mode 1 with loop order [c1,(xk,yk),(x,y)]
// (paper §III-C, and the input-ub shape of Listing 2).
func NewIm2colFractal(n, c1, kh, kw, oh, ow int) *Tensor {
	return New(n, c1, kh, kw, oh, ow, C0)
}

// PadFractalHW returns a copy of an NC1HWC0 tensor zero padded in the
// spatial dimensions: pt/pb rows on top/bottom and pl/pr columns
// left/right. With all pads zero it returns a plain clone.
func PadFractalHW(t *Tensor, pt, pb, pl, pr int) *Tensor {
	if len(t.Shape) != 5 {
		panic(fmt.Sprintf("tensor: PadFractalHW wants NC1HWC0, got shape %v", t.Shape))
	}
	if pt == 0 && pb == 0 && pl == 0 && pr == 0 {
		return t.Clone()
	}
	n, c1, h, w := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	out := New(n, c1, h+pt+pb, w+pl+pr, C0)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c1; ci++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					for c0 := 0; c0 < C0; c0++ {
						out.Set(t.At(ni, ci, hi, wi, c0), ni, ci, hi+pt, wi+pl, c0)
					}
				}
			}
		}
	}
	return out
}

// SliceC1 returns a copy of the (1,1,H,W,C0) tile at batch n, channel split
// c1 of an NC1HWC0 tensor. AI Cores process one such tile at a time
// (paper §V-A "this computation is divided in the C1 dimension").
func SliceC1(t *Tensor, n, c1 int) *Tensor {
	if len(t.Shape) != 5 {
		panic(fmt.Sprintf("tensor: SliceC1 wants NC1HWC0, got shape %v", t.Shape))
	}
	h, w := t.Shape[2], t.Shape[3]
	out := New(1, 1, h, w, C0)
	stride := h * w * C0 * fp16.Bytes
	off := (n*t.Shape[1] + c1) * stride
	copy(out.Data, t.Data[off:off+stride])
	return out
}

// SliceOuter2 returns a copy of the (1, 1, rest...) tile at indices (n, c1)
// of the two outermost dimensions of any tensor of rank >= 2. It
// generalizes SliceC1 to the Im2Col-shaped 6-d and 7-d tensors.
func SliceOuter2(t *Tensor, n, c1 int) *Tensor {
	if len(t.Shape) < 2 {
		panic(fmt.Sprintf("tensor: SliceOuter2 wants rank >= 2, got %v", t.Shape))
	}
	shape := append([]int{1, 1}, t.Shape[2:]...)
	out := New(shape...)
	off := (n*t.Shape[1] + c1) * out.Bytes()
	copy(out.Data, t.Data[off:off+out.Bytes()])
	return out
}

// StoreOuter2 copies a (1, 1, rest...) tile into indices (n, c1) of the two
// outermost dimensions of dst (the inverse of SliceOuter2).
func StoreOuter2(dst *Tensor, tile *Tensor, n, c1 int) {
	off := (n*dst.Shape[1] + c1) * tile.Bytes()
	if off+tile.Bytes() > len(dst.Data) {
		panic(fmt.Sprintf("tensor: StoreOuter2 tile %v at (%d,%d) exceeds %v", tile.Shape, n, c1, dst.Shape))
	}
	copy(dst.Data[off:off+tile.Bytes()], tile.Data)
}

// StoreC1 copies a (1,1,H,W,C0) tile into batch n, channel split c1 of an
// NC1HWC0 tensor (the inverse of SliceC1).
func StoreC1(dst *Tensor, tile *Tensor, n, c1 int) {
	h, w := dst.Shape[2], dst.Shape[3]
	if len(tile.Shape) != 5 || tile.Shape[2] != h || tile.Shape[3] != w {
		panic(fmt.Sprintf("tensor: StoreC1 tile shape %v does not match %v", tile.Shape, dst.Shape))
	}
	stride := h * w * C0 * fp16.Bytes
	off := (n*dst.Shape[1] + c1) * stride
	copy(dst.Data[off:off+stride], tile.Data)
}
