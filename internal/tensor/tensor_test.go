package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"davinci/internal/fp16"
)

func TestNewAndIndex(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Bytes() != 48 {
		t.Fatalf("Len=%d Bytes=%d", x.Len(), x.Bytes())
	}
	if got := x.Index(1, 2, 3); got != 23 {
		t.Errorf("Index(1,2,3) = %d, want 23", got)
	}
	if got := x.Index(0, 0, 0); got != 0 {
		t.Errorf("Index(0,0,0) = %d", got)
	}
	x.Set(fp16.One, 1, 0, 2)
	if got := x.At(1, 0, 2); got != fp16.One {
		t.Errorf("At = %#04x", got)
	}
	if got := x.AtFlat(x.Index(1, 0, 2)); got != fp16.One {
		t.Errorf("AtFlat = %#04x", got)
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", idx)
				}
			}()
			x.Index(idx...)
		}()
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(3, 0)
}

func TestFillAndClone(t *testing.T) {
	x := New(4)
	x.Fill(fp16.FromFloat32(2.5))
	c := x.Clone()
	x.SetFlat(0, fp16.Zero)
	if got := c.AtFlat(0).Float32(); got != 2.5 {
		t.Errorf("clone mutated: %v", got)
	}
	for i := 1; i < 4; i++ {
		if got := x.AtFlat(i).Float32(); got != 2.5 {
			t.Errorf("fill[%d] = %v", i, got)
		}
	}
}

func TestFromFloat32sRoundTrip(t *testing.T) {
	vals := []float32{1, -2, 0.5, 1024}
	x := FromFloat32s(vals, 2, 2)
	got := x.Float32s()
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromFloat32s([]float32{1, 2, 3}, 3)
	b := FromFloat32s([]float32{1, 2.5, 2}, 3)
	if got := MaxAbsDiff(a, b); got != 1 {
		t.Errorf("MaxAbsDiff = %v, want 1", got)
	}
	if got := MaxAbsDiff(a, a.Clone()); got != 0 {
		t.Errorf("self diff = %v", got)
	}
}

func TestC1Of(t *testing.T) {
	cases := map[int]int{1: 1, 15: 1, 16: 1, 17: 2, 32: 2, 64: 4, 192: 12, 288: 18, 768: 48}
	for c, want := range cases {
		if got := C1Of(c); got != want {
			t.Errorf("C1Of(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestFractalRoundTrip(t *testing.T) {
	for _, c := range []int{1, 7, 16, 17, 40} {
		rng := rand.New(rand.NewSource(int64(c)))
		x := NewNCHW(2, c, 5, 6)
		x.FillRandom(rng, 4)
		f := ToFractal(x)
		wantC1 := C1Of(c)
		if f.Shape[1] != wantC1 || f.Shape[4] != C0 {
			t.Fatalf("c=%d fractal shape %v", c, f.Shape)
		}
		back := FromFractal(f, c)
		if MaxAbsDiff(x, back) != 0 {
			t.Errorf("c=%d round trip mismatch", c)
		}
	}
}

func TestFractalPaddingIsZero(t *testing.T) {
	x := NewNCHW(1, 20, 3, 3)
	x.Fill(fp16.One)
	f := ToFractal(x)
	// Channels 20..31 must be zero padding.
	for hi := 0; hi < 3; hi++ {
		for wi := 0; wi < 3; wi++ {
			for c0 := 4; c0 < C0; c0++ {
				if got := f.At(0, 1, hi, wi, c0); got != fp16.Zero {
					t.Fatalf("padding at c0=%d not zero: %#04x", c0, got)
				}
			}
		}
	}
}

// Property: NCHW -> NC1HWC0 -> NCHW is the identity for any small shape.
func TestQuickFractalRoundTrip(t *testing.T) {
	f := func(cRaw, hRaw, wRaw uint8, seed int64) bool {
		c := int(cRaw%37) + 1
		h := int(hRaw%6) + 1
		w := int(wRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		x := NewNCHW(1, c, h, w)
		x.FillRandom(rng, 8)
		return MaxAbsDiff(x, FromFractal(ToFractal(x), c)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPadFractalHW(t *testing.T) {
	x := New(1, 1, 2, 2, C0)
	x.Fill(fp16.One)
	p := PadFractalHW(x, 1, 2, 0, 1)
	if p.Shape[2] != 5 || p.Shape[3] != 3 {
		t.Fatalf("padded shape %v", p.Shape)
	}
	// Border must be zero, interior one.
	for hi := 0; hi < 5; hi++ {
		for wi := 0; wi < 3; wi++ {
			want := fp16.Zero
			if hi >= 1 && hi < 3 && wi < 2 {
				want = fp16.One
			}
			if got := p.At(0, 0, hi, wi, 0); got != want {
				t.Errorf("pad(%d,%d) = %#04x, want %#04x", hi, wi, got, want)
			}
		}
	}
	// Zero padding returns an independent clone.
	q := PadFractalHW(x, 0, 0, 0, 0)
	q.SetFlat(0, fp16.Zero)
	if x.AtFlat(0) != fp16.One {
		t.Error("PadFractalHW(0,0,0,0) aliased input")
	}
}

func TestSliceStoreC1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := New(2, 3, 4, 5, C0)
	x.FillRandom(rng, 2)
	tile := SliceC1(x, 1, 2)
	if tile.Shape[2] != 4 || tile.Shape[3] != 5 {
		t.Fatalf("tile shape %v", tile.Shape)
	}
	for hi := 0; hi < 4; hi++ {
		for wi := 0; wi < 5; wi++ {
			for c0 := 0; c0 < C0; c0++ {
				if tile.At(0, 0, hi, wi, c0) != x.At(1, 2, hi, wi, c0) {
					t.Fatalf("tile mismatch at (%d,%d,%d)", hi, wi, c0)
				}
			}
		}
	}
	y := New(2, 3, 4, 5, C0)
	StoreC1(y, tile, 1, 2)
	if MaxAbsDiff(SliceC1(y, 1, 2), tile) != 0 {
		t.Error("StoreC1 round trip failed")
	}
	if y.At(0, 0, 0, 0, 0) != fp16.Zero {
		t.Error("StoreC1 touched other tiles")
	}
}

func TestString(t *testing.T) {
	if got := New(1, 4, 8, 8, 16).String(); got != "Tensor(1,4,8,8,16)" {
		t.Errorf("String = %q", got)
	}
}
