// Package tensor provides dense Float16 tensors and the memory layouts used
// by the DaVinci architecture: the framework-facing NCHW layout and the
// fractal NC1HWC0 layout consumed by the AI Core (paper §II-A and §III-B).
//
// All tensors are row-major contiguous over their Shape and store raw
// binary16 bytes, exactly as the simulated scratchpad and global memories
// do, so a Tensor's Data can be DMA'd into the simulator without copying
// conversions.
package tensor

import (
	"fmt"
	"math/rand"
	"strings"

	"davinci/internal/fp16"
)

// C0 is the constant fractal channel-split length for Float16: a
// data-fractal is 16 rows of C0 elements = 16*16*2 bytes = 4096 bits
// (paper §III-B).
const C0 = 16

// FractalRows is the number of patches covered by one fractal (§III-C).
const FractalRows = 16

// FractalBytes is the size of one data-fractal in bytes.
const FractalBytes = FractalRows * C0 * fp16.Bytes

// Tensor is a dense row-major Float16 tensor.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the packed binary16 storage, len = prod(Shape)*2.
	Data []byte
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]byte, n*fp16.Bytes)}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) / fp16.Bytes }

// Bytes returns the storage size in bytes.
func (t *Tensor) Bytes() int { return len(t.Data) }

// Index converts a multi-index to a flat element index.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.Shape)))
	}
	flat := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		flat = flat*t.Shape[i] + x
	}
	return flat
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) fp16.Float16 {
	return fp16.Load(t.Data, t.Index(idx...)*fp16.Bytes)
}

// Set stores v at the multi-index.
func (t *Tensor) Set(v fp16.Float16, idx ...int) {
	fp16.Store(t.Data, t.Index(idx...)*fp16.Bytes, v)
}

// AtFlat returns the element at flat index i.
func (t *Tensor) AtFlat(i int) fp16.Float16 { return fp16.Load(t.Data, i*fp16.Bytes) }

// SetFlat stores v at flat index i.
func (t *Tensor) SetFlat(i int, v fp16.Float16) { fp16.Store(t.Data, i*fp16.Bytes, v) }

// Fill sets every element to v.
func (t *Tensor) Fill(v fp16.Float16) { fp16.Fill(t.Data, 0, t.Len(), v) }

// FillRandom fills the tensor with uniform values in [-scale, scale] drawn
// from rng, rounded to binary16.
func (t *Tensor) FillRandom(rng *rand.Rand, scale float64) {
	for i := 0; i < t.Len(); i++ {
		t.SetFlat(i, fp16.FromFloat64((rng.Float64()*2-1)*scale))
	}
}

// FillSeq fills with 0,1,2,... useful for layout debugging (values above
// 2048 lose integer precision in binary16; keep test tensors small).
func (t *Tensor) FillSeq() {
	for i := 0; i < t.Len(); i++ {
		t.SetFlat(i, fp16.FromFloat64(float64(i)))
	}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]byte, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Float32s decodes the tensor to a float32 slice in flat order.
func (t *Tensor) Float32s() []float32 { return fp16.DecodeSlice(t.Data) }

// FromFloat32s builds a tensor of the given shape from float32 data.
func FromFloat32s(data []float32, shape ...int) *Tensor {
	t := New(shape...)
	if len(data) != t.Len() {
		panic(fmt.Sprintf("tensor: %d values for shape %v", len(data), shape))
	}
	copy(t.Data, fp16.EncodeSlice(data))
	return t
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// same-shaped tensors (NaN if either holds a NaN where the other does not).
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var max float64
	for i := 0; i < a.Len(); i++ {
		x, y := fp16.ToFloat64(a.AtFlat(i)), fp16.ToFloat64(b.AtFlat(i))
		d := x - y
		if d < 0 {
			d = -d
		}
		if d > max || d != d {
			max = d
			if d != d {
				return d
			}
		}
	}
	return max
}

// String renders a compact description, e.g. "Tensor(1,4,8,8,16)".
func (t *Tensor) String() string {
	parts := make([]string, len(t.Shape))
	for i, d := range t.Shape {
		parts[i] = fmt.Sprint(d)
	}
	return "Tensor(" + strings.Join(parts, ",") + ")"
}
