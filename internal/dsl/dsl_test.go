package dsl

import (
	"math/rand"
	"testing"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

// listing1 defines MaxPool exactly as Listing 1 of the paper.
func listing1(n, c1, ih, iw, kh, kw, sh, sw int) (*Placeholder, *Computation) {
	p := isa.ConvParams{Ih: ih, Iw: iw, Kh: kh, Kw: kw, Sh: sh, Sw: sw}
	oh, ow := p.OutDims()
	input := NewPlaceholder("input", n, c1, ih, iw, tensor.C0)
	redH := ReduceAxis("red_h", kh)
	redW := ReduceAxis("red_w", kw)
	output := Compute("output", []int{n, c1, oh, ow, tensor.C0}, func(ix ...Index) Expr {
		nn, cc, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return Max(input.At(nn, cc, h.Mul(sh).AddAxis(redH), w.Mul(sw).AddAxis(redW), c0), redH, redW)
	})
	return input, output
}

func newCore() *aicore.Core { return aicore.New(buffer.Config{}, nil) }

func TestEvalMatchesReference(t *testing.T) {
	input, output := listing1(1, 2, 12, 10, 3, 3, 2, 2)
	rng := rand.New(rand.NewSource(1))
	in := tensor.New(1, 2, 12, 10, tensor.C0)
	in.FillRandom(rng, 4)
	got, err := Eval(output, map[*Placeholder]*tensor.Tensor{input: in})
	if err != nil {
		t.Fatal(err)
	}
	p := isa.ConvParams{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	want := ref.MaxPoolForward(in, p)
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Error("interpreter diverges from reference model")
	}
}

func TestAnalyzeRecoversParams(t *testing.T) {
	_, output := listing1(1, 1, 35, 33, 3, 2, 2, 3)
	pat, err := analyzePool(output)
	if err != nil {
		t.Fatal(err)
	}
	if pat.p.Kh != 3 || pat.p.Kw != 2 || pat.p.Sh != 2 || pat.p.Sw != 3 {
		t.Errorf("recovered %+v", pat.p)
	}
	if pat.op != ReduceMax || pat.p.Pt != 0 || pat.p.Pl != 0 {
		t.Errorf("recovered %+v op %v", pat.p, pat.op)
	}
}

func TestAnalyzeRecoversPadding(t *testing.T) {
	// SAME-padded maxpool: index h*1 + rh - 1.
	input := NewPlaceholder("input", 1, 1, 8, 8, tensor.C0)
	redH := ReduceAxis("red_h", 3)
	redW := ReduceAxis("red_w", 3)
	output := Compute("output", []int{1, 1, 8, 8, tensor.C0}, func(ix ...Index) Expr {
		nn, cc, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return Max(input.At(nn, cc,
			h.AddAxis(redH).Add(Const(-1)),
			w.AddAxis(redW).Add(Const(-1)), c0), redH, redW)
	})
	pat, err := analyzePool(output)
	if err != nil {
		t.Fatal(err)
	}
	if pat.p.Pt != 1 || pat.p.Pl != 1 || pat.p.Pb != 1 || pat.p.Pr != 1 {
		t.Errorf("recovered padding %+v", pat.p)
	}
}

// The four schedules of the same algorithm must all match the interpreter
// bit for bit: schedules change performance, never results (§IV-A).
func TestAllSchedulesAgreeWithInterpreter(t *testing.T) {
	input, output := listing1(1, 2, 14, 14, 3, 3, 2, 2)
	rng := rand.New(rand.NewSource(2))
	in := tensor.New(1, 2, 14, 14, tensor.C0)
	in.FillRandom(rng, 4)
	binding := map[*Placeholder]*tensor.Tensor{input: in}
	want, err := Eval(output, binding)
	if err != nil {
		t.Fatal(err)
	}
	schedules := map[string]*Schedule{
		"standard":  CreateSchedule(output),
		"im2col":    CreateSchedule(output).TensorizeIm2col(),
		"expansion": CreateSchedule(output).Expand(),
		"xysplit":   CreateSchedule(output).SplitXY(),
	}
	cycles := map[string]int64{}
	for name, s := range schedules {
		got, st, err := Build(newCore(), s, binding)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Errorf("%s: lowered kernel diverges from the algorithm", name)
		}
		cycles[name] = st.Cycles
	}
	if cycles["im2col"] >= cycles["standard"] {
		t.Errorf("im2col schedule (%d) not faster than standard (%d)", cycles["im2col"], cycles["standard"])
	}
}

func TestAvgPoolWithScaleEpilogue(t *testing.T) {
	p := isa.ConvParams{Ih: 12, Iw: 12, Kh: 2, Kw: 2, Sh: 2, Sw: 2}
	oh, ow := p.OutDims()
	input := NewPlaceholder("input", 1, 1, 12, 12, tensor.C0)
	redH := ReduceAxis("red_h", 2)
	redW := ReduceAxis("red_w", 2)
	output := Compute("output", []int{1, 1, oh, ow, tensor.C0}, func(ix ...Index) Expr {
		nn, cc, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return Scale{
			Factor: fp16.FromFloat64(0.25),
			Inner:  Sum(input.At(nn, cc, h.Mul(2).AddAxis(redH), w.Mul(2).AddAxis(redW), c0), redH, redW),
		}
	})
	rng := rand.New(rand.NewSource(3))
	in := tensor.New(1, 1, 12, 12, tensor.C0)
	in.FillRandom(rng, 4)
	binding := map[*Placeholder]*tensor.Tensor{input: in}
	want := ref.AvgPoolForward(in, p)
	for _, s := range []*Schedule{CreateSchedule(output), CreateSchedule(output).TensorizeIm2col()} {
		got, _, err := Build(newCore(), s, binding)
		if err != nil {
			t.Fatalf("%v: %v", s.Strategy(), err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Errorf("%v: avg schedule diverges", s.Strategy())
		}
		evaled, err := Eval(output, binding)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(got, evaled) != 0 {
			t.Errorf("%v: avg schedule diverges from interpreter", s.Strategy())
		}
	}
}

func TestElementwiseLowering(t *testing.T) {
	shape := []int{3, 40, tensor.C0}
	a := NewPlaceholder("a", shape...)
	b := NewPlaceholder("b", shape...)
	for _, kind := range []BinKind{BinAdd, BinMul, BinMax} {
		output := Compute("out", shape, func(ix ...Index) Expr {
			return Bin{Kind: kind, A: a.At(ix...), B: b.At(ix...)}
		})
		rng := rand.New(rand.NewSource(int64(kind)))
		at := tensor.New(shape...)
		bt := tensor.New(shape...)
		at.FillRandom(rng, 4)
		bt.FillRandom(rng, 4)
		binding := map[*Placeholder]*tensor.Tensor{a: at, b: bt}
		want, err := Eval(output, binding)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Build(newCore(), CreateSchedule(output), binding)
		if err != nil {
			t.Fatal(err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			t.Errorf("kind %d: elementwise lowering diverges", kind)
		}
		if st.PipeInstrs[isa.PipeVector] == 0 {
			t.Error("no vector instructions emitted")
		}
	}
}

func TestRejectsUnsupportedPatterns(t *testing.T) {
	input := NewPlaceholder("input", 1, 1, 8, 8, tensor.C0)
	// Transposed access (h index uses the w axis): not a pooling window.
	redH := ReduceAxis("red_h", 2)
	redW := ReduceAxis("red_w", 2)
	bad := Compute("bad", []int{1, 1, 4, 4, tensor.C0}, func(ix ...Index) Expr {
		nn, cc, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return Max(input.At(nn, cc, w.Mul(2).AddAxis(redH), h.Mul(2).AddAxis(redW), c0), redH, redW)
	})
	if _, err := analyzePool(bad); err == nil {
		t.Error("transposed access accepted")
	}
	// Missing input binding.
	_, output := listing1(1, 1, 8, 8, 2, 2, 2, 2)
	if _, _, err := Build(newCore(), CreateSchedule(output), nil); err == nil {
		t.Error("missing binding accepted")
	}
	// Sum pooling without the epilogue is rejected by the lowering.
	sum := Compute("sum", []int{1, 1, 4, 4, tensor.C0}, func(ix ...Index) Expr {
		nn, cc, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return Sum(input.At(nn, cc, h.Mul(2).AddAxis(redH), w.Mul(2).AddAxis(redW), c0), redH, redW)
	})
	in := tensor.New(1, 1, 8, 8, tensor.C0)
	if _, _, err := Build(newCore(), CreateSchedule(sum), map[*Placeholder]*tensor.Tensor{input: in}); err == nil {
		t.Error("sum pooling without epilogue accepted")
	}
	// Wrong scale factor.
	badScale := Compute("bads", []int{1, 1, 4, 4, tensor.C0}, func(ix ...Index) Expr {
		nn, cc, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return Scale{Factor: fp16.One, Inner: Sum(input.At(nn, cc, h.Mul(2).AddAxis(redH), w.Mul(2).AddAxis(redW), c0), redH, redW)}
	})
	if _, err := analyzePool(badScale); err == nil {
		t.Error("wrong scale factor accepted")
	}
}

func TestIndexAlgebra(t *testing.T) {
	a := &Axis{Name: "a", Extent: 4}
	b := &Axis{Name: "b", Extent: 4}
	ix := IdxOf(a).Mul(3).AddAxis(b).Add(Const(-2))
	if ix.Coeff(a) != 3 || ix.Coeff(b) != 1 || ix.ConstTerm() != -2 {
		t.Errorf("index algebra wrong: %+v", ix)
	}
	env := map[*Axis]int{a: 2, b: 5}
	if got := ix.eval(env); got != 3*2+5-2 {
		t.Errorf("eval = %d", got)
	}
	if len(ix.axes()) != 2 {
		t.Error("axes()")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyStandard: "standard", StrategyIm2col: "im2col",
		StrategyExpansion: "expansion", StrategyXYSplit: "xysplit",
	} {
		if s.String() != want {
			t.Errorf("Strategy %d = %q", s, s.String())
		}
	}
}

// TestScheduleDirectives checks the explicit-schedule path: Tile/Buffers
// steer the lowering without changing results, and the schedule point is
// recorded on the Schedule builder.
func TestScheduleDirectives(t *testing.T) {
	input, output := listing1(1, 2, 12, 10, 3, 3, 2, 2)
	rng := rand.New(rand.NewSource(5))
	in := tensor.New(1, 2, 12, 10, tensor.C0)
	in.FillRandom(rng, 4)
	p := isa.ConvParams{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	want := ref.MaxPoolForward(in, p)

	s := CreateSchedule(output).TensorizeIm2col().Tile(1).Buffers(1)
	if s.Params().Band != 1 || s.Params().Buffers != 1 {
		t.Fatalf("schedule params = %+v", s.Params())
	}
	got, _, err := Build(newCore(), s, map[*Placeholder]*tensor.Tensor{input: in})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Error("tiled schedule diverges from reference model")
	}

	// A band the Unified Buffer cannot hold is an invalid schedule, not a
	// silent clamp.
	_, _, err = Build(newCore(), CreateSchedule(output).Tile(1 << 20), map[*Placeholder]*tensor.Tensor{input: in})
	if err == nil {
		t.Fatal("oversized tile accepted")
	}
}

// TestScheduleAuto checks the autoschedule path end to end: the search
// adopts a validated schedule (or the default) and results stay exact.
func TestScheduleAuto(t *testing.T) {
	input, output := listing1(1, 2, 12, 10, 3, 3, 2, 2)
	rng := rand.New(rand.NewSource(6))
	in := tensor.New(1, 2, 12, 10, tensor.C0)
	in.FillRandom(rng, 4)
	p := isa.ConvParams{Ih: 12, Iw: 10, Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	want := ref.MaxPoolForward(in, p)

	s := CreateSchedule(output).AutoSchedule()
	if !s.Auto() {
		t.Fatal("AutoSchedule not recorded")
	}
	got, _, err := Build(newCore(), s, map[*Placeholder]*tensor.Tensor{input: in})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(got, want) != 0 {
		t.Error("autoscheduled build diverges from reference model")
	}
}
