// Package dsl is a miniature TVM-style tensor-expression language — the
// software stack of paper §IV. Like TVM/AKG it decouples the algorithm
// (Placeholder / Compute / ReduceAxis expressions, exactly the Listings 1
// and 2 of the paper) from the execution strategy (a Schedule selecting
// which lowering runs on the simulated AI Core).
//
// The package contains a reference interpreter (Eval) and a lowering pass
// (Build) that analyses the affine access pattern of a windowed reduction
// — extracting kernel size and strides from the index expressions — and
// emits the corresponding CCE instruction stream. Schedules choose among
// the paper's lowerings: standard, Im2col-based (via the Im2Col custom
// intrinsic, §VI: "they are declared and manually added to the code as
// custom intrinsics"), expansion-based, or X-Y split.
//
// Scope: forward pooling patterns and elementwise maps. Backward pooling
// requires the Col2Im instruction, which — as the paper notes for AKG's
// polyhedral framework — the automatic path does not support; backward
// kernels live in internal/ops as hand-written intrinsic code.
package dsl

import (
	"fmt"

	"davinci/internal/fp16"
)

// Axis is a named iteration variable: either a data-parallel output axis
// or a reduction axis (ReduceAxis of the paper's listings).
type Axis struct {
	Name   string
	Extent int
	Reduce bool
}

// ReduceAxis declares a reduction axis of the given extent (Listing 1,
// lines 3-4).
func ReduceAxis(name string, extent int) *Axis {
	return &Axis{Name: name, Extent: extent, Reduce: true}
}

// Index is an affine index expression: a linear combination of axes plus a
// constant. Affine indices are what make the paper's loop nests DOALL
// loops amenable to the schedule transformations of §IV-A.
type Index struct {
	terms map[*Axis]int
	c     int
}

// IdxOf wraps an axis as an index expression.
func IdxOf(a *Axis) Index { return Index{terms: map[*Axis]int{a: 1}} }

// Const builds a constant index.
func Const(c int) Index { return Index{c: c} }

// Mul scales the index by a constant.
func (ix Index) Mul(k int) Index {
	out := Index{terms: map[*Axis]int{}, c: ix.c * k}
	for a, v := range ix.terms {
		out.terms[a] = v * k
	}
	return out
}

// Add sums two index expressions.
func (ix Index) Add(o Index) Index {
	out := Index{terms: map[*Axis]int{}, c: ix.c + o.c}
	for a, v := range ix.terms {
		out.terms[a] += v
	}
	for a, v := range o.terms {
		out.terms[a] += v
	}
	return out
}

// AddAxis is shorthand for ix.Add(IdxOf(a)).
func (ix Index) AddAxis(a *Axis) Index { return ix.Add(IdxOf(a)) }

// Coeff returns the coefficient of axis a.
func (ix Index) Coeff(a *Axis) int { return ix.terms[a] }

// ConstTerm returns the constant term.
func (ix Index) ConstTerm() int { return ix.c }

// axes returns the axes with non-zero coefficients.
func (ix Index) axes() []*Axis {
	var out []*Axis
	for a, v := range ix.terms {
		if v != 0 {
			out = append(out, a)
		}
	}
	return out
}

// eval computes the index value under an axis assignment.
func (ix Index) eval(env map[*Axis]int) int {
	v := ix.c
	for a, k := range ix.terms {
		v += k * env[a]
	}
	return v
}

// Expr is a scalar expression over tensor accesses.
type Expr interface{ isExpr() }

// Access reads a placeholder at affine indices.
type Access struct {
	T   *Placeholder
	Idx []Index
}

func (Access) isExpr() {}

// ReduceOp is the reduction operator.
type ReduceOp int

const (
	// ReduceMax selects the maximum (MaxPool).
	ReduceMax ReduceOp = iota
	// ReduceSum sums (AvgPool before scaling).
	ReduceSum
)

func (o ReduceOp) String() string {
	if o == ReduceMax {
		return "max"
	}
	return "sum"
}

// Identity returns the reduction's identity element.
func (o ReduceOp) Identity() fp16.Float16 {
	if o == ReduceMax {
		return fp16.NegativeInfinity
	}
	return fp16.Zero
}

// Apply combines two values.
func (o ReduceOp) Apply(a, b fp16.Float16) fp16.Float16 {
	if o == ReduceMax {
		return fp16.Max(a, b)
	}
	return fp16.Add(a, b)
}

// Reduce reduces Body over Axes (in declaration order, innermost last).
type Reduce struct {
	Op   ReduceOp
	Body Access
	Axes []*Axis
}

func (Reduce) isExpr() {}

// Max builds a max reduction (Listing 1, lines 6-11).
func Max(body Access, axes ...*Axis) Reduce {
	return Reduce{Op: ReduceMax, Body: body, Axes: axes}
}

// Sum builds a sum reduction (§V-C).
func Sum(body Access, axes ...*Axis) Reduce {
	return Reduce{Op: ReduceSum, Body: body, Axes: axes}
}

// Scale multiplies a sub-expression by a constant (AvgPool's element-wise
// division, expressed as a multiply by 1/(Kh*Kw)).
type Scale struct {
	Factor fp16.Float16
	Inner  Expr
}

func (Scale) isExpr() {}

// BinKind is an elementwise binary operator.
type BinKind int

const (
	// BinAdd is elementwise addition.
	BinAdd BinKind = iota
	// BinMul is elementwise multiplication.
	BinMul
	// BinMax is elementwise maximum.
	BinMax
)

// Bin is an elementwise combination of two accesses.
type Bin struct {
	Kind BinKind
	A, B Access
}

func (Bin) isExpr() {}

// Placeholder is an input tensor (Listing 1, line 1).
type Placeholder struct {
	Name  string
	Shape []int
}

// NewPlaceholder declares an input.
func NewPlaceholder(name string, shape ...int) *Placeholder {
	return &Placeholder{Name: name, Shape: shape}
}

// At builds an access with the given index expressions.
func (p *Placeholder) At(idx ...Index) Access {
	if len(idx) != len(p.Shape) {
		panic(fmt.Sprintf("dsl: %s expects %d indices, got %d", p.Name, len(p.Shape), len(idx)))
	}
	return Access{T: p, Idx: idx}
}

// Computation is an output tensor defined by an expression over its output
// axes (Listing 1, lines 5-11).
type Computation struct {
	Name  string
	Shape []int
	Vars  []*Axis // one data-parallel axis per output dimension
	Body  Expr
}

// Compute declares an output tensor: fn receives one Index per output
// dimension and returns the defining expression.
func Compute(name string, shape []int, fn func(ix ...Index) Expr) *Computation {
	vars := make([]*Axis, len(shape))
	idx := make([]Index, len(shape))
	for i, d := range shape {
		vars[i] = &Axis{Name: fmt.Sprintf("%s_i%d", name, i), Extent: d}
		idx[i] = IdxOf(vars[i])
	}
	return &Computation{Name: name, Shape: shape, Vars: vars, Body: fn(idx...)}
}
