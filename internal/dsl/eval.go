package dsl

import (
	"fmt"

	"davinci/internal/fp16"
	"davinci/internal/tensor"
)

// Eval interprets a computation directly — the semantics the lowered
// kernels must reproduce. Out-of-bounds accesses read zero, matching the
// zero-padding convention of the Im2Col instruction.
func Eval(c *Computation, inputs map[*Placeholder]*tensor.Tensor) (*tensor.Tensor, error) {
	for p, t := range inputs {
		if len(t.Shape) != len(p.Shape) {
			return nil, fmt.Errorf("dsl: input %s rank mismatch: %v vs %v", p.Name, t.Shape, p.Shape)
		}
		for i := range p.Shape {
			if t.Shape[i] != p.Shape[i] {
				return nil, fmt.Errorf("dsl: input %s shape mismatch: %v vs %v", p.Name, t.Shape, p.Shape)
			}
		}
	}
	out := tensor.New(c.Shape...)
	env := map[*Axis]int{}
	idx := make([]int, len(c.Shape))
	var walk func(d int) error
	walk = func(d int) error {
		if d == len(c.Shape) {
			v, err := evalExpr(c.Body, env, inputs)
			if err != nil {
				return err
			}
			out.Set(v, idx...)
			return nil
		}
		for i := 0; i < c.Shape[d]; i++ {
			idx[d] = i
			env[c.Vars[d]] = i
			if err := walk(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}

func evalExpr(e Expr, env map[*Axis]int, inputs map[*Placeholder]*tensor.Tensor) (fp16.Float16, error) {
	switch x := e.(type) {
	case Access:
		return evalAccess(x, env, inputs)
	case Reduce:
		acc := x.Op.Identity()
		var loop func(d int) error
		loop = func(d int) error {
			if d == len(x.Axes) {
				v, err := evalAccess(x.Body, env, inputs)
				if err != nil {
					return err
				}
				acc = x.Op.Apply(acc, v)
				return nil
			}
			for i := 0; i < x.Axes[d].Extent; i++ {
				env[x.Axes[d]] = i
				if err := loop(d + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := loop(0); err != nil {
			return 0, err
		}
		return acc, nil
	case Scale:
		v, err := evalExpr(x.Inner, env, inputs)
		if err != nil {
			return 0, err
		}
		return fp16.Mul(v, x.Factor), nil
	case Bin:
		a, err := evalAccess(x.A, env, inputs)
		if err != nil {
			return 0, err
		}
		b, err := evalAccess(x.B, env, inputs)
		if err != nil {
			return 0, err
		}
		switch x.Kind {
		case BinAdd:
			return fp16.Add(a, b), nil
		case BinMul:
			return fp16.Mul(a, b), nil
		default:
			return fp16.Max(a, b), nil
		}
	default:
		return 0, fmt.Errorf("dsl: cannot evaluate expression of type %T", e)
	}
}

func evalAccess(a Access, env map[*Axis]int, inputs map[*Placeholder]*tensor.Tensor) (fp16.Float16, error) {
	t, ok := inputs[a.T]
	if !ok {
		return 0, fmt.Errorf("dsl: no binding for placeholder %s", a.T.Name)
	}
	flat := 0
	for d, ix := range a.Idx {
		v := ix.eval(env)
		if v < 0 || v >= t.Shape[d] {
			return fp16.Zero, nil // zero padding convention
		}
		flat = flat*t.Shape[d] + v
	}
	return t.AtFlat(flat), nil
}
