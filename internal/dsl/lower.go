package dsl

import (
	"fmt"

	"davinci/internal/aicore"
	"davinci/internal/cce"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ops"
	_ "davinci/internal/sched" // registers the autoscheduler ops dispatches to
	"davinci/internal/tensor"
)

// poolPattern is the analysis result of a windowed-reduction computation:
// the layer parameters recovered from the affine index expressions.
type poolPattern struct {
	in    *Placeholder
	op    ReduceOp
	scale fp16.Float16 // 0 means no scaling epilogue
	p     isa.ConvParams
	n, c1 int
}

// analyzePool recognizes the Listing 1 / §V-C pattern:
//
//	out[n, c1, h, w, c0] = reduce(in[n, c1, h*Sh + rh (- Pt),
//	                                        w*Sw + rw (- Pl), c0])
//
// and recovers (Kh, Kw) from the reduction axis extents, (Sh, Sw) from the
// output-axis coefficients, and padding from the constant terms.
func analyzePool(c *Computation) (*poolPattern, error) {
	if len(c.Shape) != 5 || c.Shape[4] != tensor.C0 {
		return nil, fmt.Errorf("dsl: pooling output must be (N,C1,Oh,Ow,%d), got %v", tensor.C0, c.Shape)
	}
	pat := &poolPattern{scale: 0}
	body := c.Body
	if sc, ok := body.(Scale); ok {
		pat.scale = sc.Factor
		body = sc.Inner
	}
	red, ok := body.(Reduce)
	if !ok {
		return nil, fmt.Errorf("dsl: pooling body must be a reduction, got %T", body)
	}
	if len(red.Axes) != 2 {
		return nil, fmt.Errorf("dsl: pooling reduces over 2 axes, got %d", len(red.Axes))
	}
	pat.op = red.Op
	pat.in = red.Body.T
	idx := red.Body.Idx
	if len(idx) != 5 {
		return nil, fmt.Errorf("dsl: pooling input access must be rank 5, got %d", len(idx))
	}
	// Dimensions 0, 1 and 4 must be the identity over (n, c1, c0).
	for _, d := range []int{0, 1, 4} {
		if idx[d].Coeff(c.Vars[d]) != 1 || idx[d].ConstTerm() != 0 || len(idx[d].axes()) != 1 {
			return nil, fmt.Errorf("dsl: input dim %d must be the plain output axis", d)
		}
	}
	rh, rw := red.Axes[0], red.Axes[1]
	h, w := c.Vars[2], c.Vars[3]
	// Height: idx[2] = h*Sh + rh - Pt.
	if idx[2].Coeff(rh) != 1 || idx[2].Coeff(w) != 0 || idx[2].Coeff(rw) != 0 {
		return nil, fmt.Errorf("dsl: height access must be h*Sh + red_h")
	}
	if idx[3].Coeff(rw) != 1 || idx[3].Coeff(h) != 0 || idx[3].Coeff(rh) != 0 {
		return nil, fmt.Errorf("dsl: width access must be w*Sw + red_w")
	}
	pat.p = isa.ConvParams{
		Ih: pat.in.Shape[2], Iw: pat.in.Shape[3],
		Sh: idx[2].Coeff(h), Sw: idx[3].Coeff(w),
		Kh: rh.Extent, Kw: rw.Extent,
		Pt: -idx[2].ConstTerm(), Pl: -idx[3].ConstTerm(),
	}
	// Bottom/right padding follows from the output extent (Eq. 1 solved
	// for Pb/Pr).
	oh, ow := c.Shape[2], c.Shape[3]
	pat.p.Pb = (oh-1)*pat.p.Sh + pat.p.Kh - pat.p.Ih - pat.p.Pt
	pat.p.Pr = (ow-1)*pat.p.Sw + pat.p.Kw - pat.p.Iw - pat.p.Pl
	if pat.p.Pb < 0 || pat.p.Pr < 0 {
		// The window never reaches past the input; no padding needed.
		if pat.p.Pb < 0 {
			pat.p.Pb = 0
		}
		if pat.p.Pr < 0 {
			pat.p.Pr = 0
		}
	}
	if err := pat.p.Validate(); err != nil {
		return nil, fmt.Errorf("dsl: recovered invalid layer parameters: %w", err)
	}
	gotOh, gotOw := pat.p.OutDims()
	if gotOh != oh || gotOw != ow {
		return nil, fmt.Errorf("dsl: output extent (%d,%d) inconsistent with access pattern (%d,%d)", oh, ow, gotOh, gotOw)
	}
	if pat.in.Shape[0] != c.Shape[0] || pat.in.Shape[1] != c.Shape[1] {
		return nil, fmt.Errorf("dsl: N/C1 extents differ between input and output")
	}
	pat.n, pat.c1 = c.Shape[0], c.Shape[1]
	// Scaling is only supported as AvgPool's 1/(Kh*Kw) epilogue.
	if pat.scale != 0 {
		want := fp16.FromFloat64(1 / float64(pat.p.Kh*pat.p.Kw))
		if pat.op != ReduceSum || pat.scale != want {
			return nil, fmt.Errorf("dsl: only the 1/(Kh*Kw) AvgPool epilogue is supported")
		}
	}
	return pat, nil
}

// Build lowers the scheduled computation and runs it on the core, tiling
// the (N, C1) loops serially (the multi-core parallelization of these
// loops lives in internal/chip). It returns the result and timing.
func Build(core *aicore.Core, s *Schedule, inputs map[*Placeholder]*tensor.Tensor) (*tensor.Tensor, *aicore.Stats, error) {
	for p, t := range inputs {
		for i := range p.Shape {
			if len(t.Shape) != len(p.Shape) || t.Shape[i] != p.Shape[i] {
				return nil, nil, fmt.Errorf("dsl: input %s shape %v does not match placeholder %v", p.Name, t.Shape, p.Shape)
			}
		}
	}
	if pat, err := analyzePool(s.Out); err == nil {
		return buildPool(core, s, pat, inputs)
	} else if bin, ok := s.Out.Body.(Bin); ok {
		return buildElementwise(core, s.Out, bin, inputs)
	} else {
		return nil, nil, fmt.Errorf("dsl: unsupported computation (pooling analysis: %v)", err)
	}
}

func buildPool(core *aicore.Core, s *Schedule, pat *poolPattern, inputs map[*Placeholder]*tensor.Tensor) (*tensor.Tensor, *aicore.Stats, error) {
	in, ok := inputs[pat.in]
	if !ok {
		return nil, nil, fmt.Errorf("dsl: no binding for placeholder %s", pat.in.Name)
	}
	spec := ops.SpecFor(core)
	family := "maxpool_fwd"
	if pat.op != ReduceMax {
		family = "avgpool_fwd"
		if s.Strategy() != StrategyStandard && s.Strategy() != StrategyIm2col {
			return nil, nil, fmt.Errorf("dsl: no %v lowering for %v pooling", s.Strategy(), pat.op)
		}
	}
	kernel := family + "/" + s.Strategy().String()
	var (
		pl  *ops.Plan
		err error
	)
	if s.Auto() {
		// Delegate every schedule decision to the search layer; the
		// declared strategy seeds the search but the mode is an axis.
		spec.AutoSchedule = true
		pl, err = ops.AutoScheduled(kernel, spec, pat.p)
	} else {
		pl, err = ops.CompileKernel(kernel, spec, pat.p, s.Params())
	}
	if err != nil {
		return nil, nil, fmt.Errorf("dsl: %w", err)
	}
	if pat.op == ReduceSum && pat.scale == 0 {
		return nil, nil, fmt.Errorf("dsl: sum pooling without the 1/(Kh*Kw) epilogue is not a pooling layer")
	}
	oh, ow := pat.p.OutDims()
	out := tensor.New(pat.n, pat.c1, oh, ow, tensor.C0)
	total := &aicore.Stats{}
	for ni := 0; ni < pat.n; ni++ {
		for ci := 0; ci < pat.c1; ci++ {
			tile := tensor.SliceC1(in, ni, ci)
			outs, st, err := pl.Run(core, tile)
			if err != nil {
				return nil, nil, err
			}
			tensor.StoreC1(out, outs[0], ni, ci)
			total.AddSerial(st)
		}
	}
	return out, total, nil
}

// buildElementwise lowers out[i...] = a[i...] OP b[i...] where both
// accesses are the identity over the output axes: a flat vector map.
func buildElementwise(core *aicore.Core, c *Computation, bin Bin, inputs map[*Placeholder]*tensor.Tensor) (*tensor.Tensor, *aicore.Stats, error) {
	for _, acc := range []Access{bin.A, bin.B} {
		if len(acc.Idx) != len(c.Shape) {
			return nil, nil, fmt.Errorf("dsl: elementwise rank mismatch")
		}
		for d, ix := range acc.Idx {
			if ix.Coeff(c.Vars[d]) != 1 || ix.ConstTerm() != 0 || len(ix.axes()) != 1 {
				return nil, nil, fmt.Errorf("dsl: elementwise access must be the identity over output axes")
			}
		}
		for d := range c.Shape {
			if acc.T.Shape[d] != c.Shape[d] {
				return nil, nil, fmt.Errorf("dsl: elementwise shapes must match")
			}
		}
	}
	a, ok := inputs[bin.A.T]
	if !ok {
		return nil, nil, fmt.Errorf("dsl: no binding for %s", bin.A.T.Name)
	}
	b, ok := inputs[bin.B.T]
	if !ok {
		return nil, nil, fmt.Errorf("dsl: no binding for %s", bin.B.T.Name)
	}
	count := a.Len()
	if count%isa.ElemsPerBlock != 0 {
		return nil, nil, fmt.Errorf("dsl: elementwise extent %d not a multiple of %d", count, isa.ElemsPerBlock)
	}
	var op isa.VecOp
	switch bin.Kind {
	case BinAdd:
		op = isa.VAdd
	case BinMul:
		op = isa.VMul
	default:
		op = isa.VMax
	}

	core.Mem.ResetLocal()
	aGM, err := core.Mem.PlaceTensor(isa.GM, a)
	if err != nil {
		return nil, nil, err
	}
	bGM, err := core.Mem.PlaceTensor(isa.GM, b)
	if err != nil {
		return nil, nil, err
	}
	outGM, err := core.Mem.Space(isa.GM).Alloc(count * fp16.Bytes)
	if err != nil {
		return nil, nil, err
	}
	// Chunk through the UB with double buffering.
	ub := core.Mem.Space(isa.UB)
	chunk := (ub.Free() - 8*isa.BlockBytes) / (6 * fp16.Bytes) / isa.ElemsPerBlock * isa.ElemsPerBlock
	if chunk <= 0 {
		return nil, nil, fmt.Errorf("dsl: unified buffer too small")
	}
	var aUB, bUB, oUB [2]int
	for i := 0; i < 2; i++ {
		aUB[i] = ub.MustAlloc(chunk * fp16.Bytes)
		bUB[i] = ub.MustAlloc(chunk * fp16.Bytes)
		oUB[i] = ub.MustAlloc(chunk * fp16.Bytes)
	}
	prog := cce.New("dsl_elementwise_" + c.Name)
	for off, bi := 0, 0; off < count; off, bi = off+chunk, bi+1 {
		nn := chunk
		if off+nn > count {
			nn = count - off
		}
		i := bi % 2
		prog.EmitCopy(isa.GM, aGM+off*fp16.Bytes, isa.UB, aUB[i], nn*fp16.Bytes)
		prog.EmitCopy(isa.GM, bGM+off*fp16.Bytes, isa.UB, bUB[i], nn*fp16.Bytes)
		prog.EmitElementwise(op, isa.UB, oUB[i], aUB[i], bUB[i], nn)
		prog.EmitCopy(isa.UB, oUB[i], isa.GM, outGM+off*fp16.Bytes, nn*fp16.Bytes)
	}
	st, err := core.Run(prog)
	if err != nil {
		return nil, nil, err
	}
	return core.Mem.ReadTensor(isa.GM, outGM, c.Shape...), st, nil
}
