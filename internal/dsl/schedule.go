package dsl

import (
	"fmt"

	"davinci/internal/ops"
)

// ScheduleParams re-exports the schedule layer's parameter point: the DSL
// schedule is a thin builder over the same searchable space the kernel
// lowerings consume.
type ScheduleParams = ops.ScheduleParams

// Strategy selects the lowering of a pooling computation — the choice the
// paper's schedules make by declaring custom intrinsics (§VI).
type Strategy int

const (
	// StrategyStandard is the default TVM lowering (Listing 1).
	StrategyStandard Strategy = iota
	// StrategyIm2col tensorizes the input load with the Im2Col intrinsic
	// (Listing 2).
	StrategyIm2col
	// StrategyExpansion rearranges the input with plain vector copies
	// inside the Unified Buffer ("Maxpool with expansion", §VI-B).
	StrategyExpansion
	// StrategyXYSplit reduces width then height with an intermediate
	// tensor (Lai et al., §VI-B).
	StrategyXYSplit
)

func (s Strategy) String() string {
	switch s {
	case StrategyStandard:
		return "standard"
	case StrategyIm2col:
		return "im2col"
	case StrategyExpansion:
		return "expansion"
	case StrategyXYSplit:
		return "xysplit"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Schedule is an execution strategy for one computation. Like a TVM
// schedule it never changes results, only performance (§IV-A: "the
// programmer is free to test multiple optimization strategies by rewriting
// a schedule without changing the algorithm"). Beyond the lowering
// strategy it carries the full ScheduleParams point — band tiling, buffer
// rotation, every knob the schedule layer exposes — and can delegate the
// whole choice to the autoscheduler.
type Schedule struct {
	Out      *Computation
	strategy Strategy
	params   ScheduleParams
	auto     bool
}

// CreateSchedule starts a default (standard-lowering) schedule. The C1
// tiling and AI-core parallelization of §IV-A are applied automatically by
// the lowering, as AKG does.
func CreateSchedule(c *Computation) *Schedule {
	return &Schedule{Out: c, strategy: StrategyStandard}
}

// TensorizeIm2col declares the Im2Col custom intrinsic for the input load,
// switching to the accelerated lowering of Listing 2.
func (s *Schedule) TensorizeIm2col() *Schedule {
	s.strategy = StrategyIm2col
	return s
}

// Expand selects the vector-copy expansion lowering.
func (s *Schedule) Expand() *Schedule {
	s.strategy = StrategyExpansion
	return s
}

// SplitXY selects the X-Y split lowering.
func (s *Schedule) SplitXY() *Schedule {
	s.strategy = StrategyXYSplit
	return s
}

// Strategy reports the selected lowering.
func (s *Schedule) Strategy() Strategy { return s.strategy }

// Tile splits the output into bands of the given size (output rows for
// the direct lowerings, patch fractals for the Im2col ones) — the TVM
// split primitive. 0 keeps the hand-tuned band.
func (s *Schedule) Tile(band int) *Schedule {
	s.params.Band = band
	return s
}

// Buffers sets the UB rotation depth: 2 double-buffers band transfers
// against compute, 1 runs single-buffered. 0 keeps the hand-tuned choice.
func (s *Schedule) Buffers(n int) *Schedule {
	s.params.Buffers = n
	return s
}

// With replaces the schedule's full parameter point (the strategy set via
// TensorizeIm2col/Expand/SplitXY still selects the lowering mode).
func (s *Schedule) With(sp ScheduleParams) *Schedule {
	s.params = sp
	return s
}

// AutoSchedule delegates every schedule decision — including the lowering
// mode — to the search layer (internal/sched): the build enumerates the
// kernel's schedule space, keeps the hand-tuned default unless a searched
// candidate beats it under the cycle oracle, and validates the winner
// before adopting it.
func (s *Schedule) AutoSchedule() *Schedule {
	s.auto = true
	return s
}

// Params reports the schedule's explicit parameter point.
func (s *Schedule) Params() ScheduleParams { return s.params }

// Auto reports whether the schedule delegates to the search layer.
func (s *Schedule) Auto() bool { return s.auto }
