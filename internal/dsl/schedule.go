package dsl

import "fmt"

// Strategy selects the lowering of a pooling computation — the choice the
// paper's schedules make by declaring custom intrinsics (§VI).
type Strategy int

const (
	// StrategyStandard is the default TVM lowering (Listing 1).
	StrategyStandard Strategy = iota
	// StrategyIm2col tensorizes the input load with the Im2Col intrinsic
	// (Listing 2).
	StrategyIm2col
	// StrategyExpansion rearranges the input with plain vector copies
	// inside the Unified Buffer ("Maxpool with expansion", §VI-B).
	StrategyExpansion
	// StrategyXYSplit reduces width then height with an intermediate
	// tensor (Lai et al., §VI-B).
	StrategyXYSplit
)

func (s Strategy) String() string {
	switch s {
	case StrategyStandard:
		return "standard"
	case StrategyIm2col:
		return "im2col"
	case StrategyExpansion:
		return "expansion"
	case StrategyXYSplit:
		return "xysplit"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Schedule is an execution strategy for one computation. Like a TVM
// schedule it never changes results, only performance (§IV-A: "the
// programmer is free to test multiple optimization strategies by rewriting
// a schedule without changing the algorithm").
type Schedule struct {
	Out      *Computation
	strategy Strategy
}

// CreateSchedule starts a default (standard-lowering) schedule. The C1
// tiling and AI-core parallelization of §IV-A are applied automatically by
// the lowering, as AKG does.
func CreateSchedule(c *Computation) *Schedule {
	return &Schedule{Out: c, strategy: StrategyStandard}
}

// TensorizeIm2col declares the Im2Col custom intrinsic for the input load,
// switching to the accelerated lowering of Listing 2.
func (s *Schedule) TensorizeIm2col() *Schedule {
	s.strategy = StrategyIm2col
	return s
}

// Expand selects the vector-copy expansion lowering.
func (s *Schedule) Expand() *Schedule {
	s.strategy = StrategyExpansion
	return s
}

// SplitXY selects the X-Y split lowering.
func (s *Schedule) SplitXY() *Schedule {
	s.strategy = StrategyXYSplit
	return s
}

// Strategy reports the selected lowering.
func (s *Schedule) Strategy() Strategy { return s.strategy }
