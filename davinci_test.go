package davinci

import (
	"math/rand"
	"testing"

	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func TestQuickstartFlow(t *testing.T) {
	dev := NewDevice(ChipConfig{Cores: 2})
	rng := rand.New(rand.NewSource(1))
	in := NewRandomInput(rng, 1, 20, 24, 24, 4)
	p := WithInput(Pooling2D(3, 2, 0), 24, 24)

	out, stats, err := dev.MaxPoolForward("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[2] != 11 || out.Shape[3] != 11 {
		t.Fatalf("output shape %v", out.Shape)
	}
	if stats.Cycles <= 0 || stats.Tiles != 2 {
		t.Errorf("stats %+v", stats)
	}
	if tensor.MaxAbsDiff(out, ref.MaxPoolForward(in, p)) != 0 {
		t.Error("facade output diverges from reference")
	}
}

func TestLayoutRoundTripThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := NewNCHW(1, 20, 6, 7)
	x.FillRandom(rng, 2)
	back := ToNCHW(FromNCHW(x), 20)
	if tensor.MaxAbsDiff(x, back) != 0 {
		t.Error("NCHW round trip failed")
	}
}

func TestPooling2DBuilders(t *testing.T) {
	p := WithInput(Pooling2D(3, 2, 1), 35, 33)
	if p.Kh != 3 || p.Sw != 2 || p.Pt != 1 || p.Ih != 35 || p.Iw != 33 {
		t.Errorf("builder wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVariantLists(t *testing.T) {
	if len(ForwardVariants()) != 4 || len(ArgmaxVariants()) != 2 ||
		len(BackwardVariants()) != 2 || len(AvgVariants()) != 3 {
		t.Error("variant lists wrong")
	}
	dev := NewDevice(ChipConfig{Cores: 1})
	rng := rand.New(rand.NewSource(3))
	in := NewRandomInput(rng, 1, 16, 12, 12, 4)
	p := WithInput(Pooling2D(2, 2, 0), 12, 12)
	for _, v := range ForwardVariants() {
		if _, _, err := dev.MaxPoolForward(v, in, p); err != nil {
			t.Errorf("variant %s: %v", v, err)
		}
	}
}

func TestTrainingRoundTripThroughFacade(t *testing.T) {
	dev := NewDevice(ChipConfig{Cores: 1})
	rng := rand.New(rand.NewSource(4))
	in := NewRandomInput(rng, 1, 16, 14, 14, 4)
	p := WithInput(Pooling2D(3, 2, 0), 14, 14)

	out, mask, _, err := dev.MaxPoolForwardArgmax("im2col", in, p)
	if err != nil {
		t.Fatal(err)
	}
	grad := NewInput(1, 16, out.Shape[2], out.Shape[3])
	grad.Fill(0x3c00) // 1.0
	back, _, err := dev.MaxPoolBackward("col2im", mask, grad, p)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.MaxPoolBackward(mask, grad, p, 14, 14)
	if tensor.MaxAbsDiff(back, want) != 0 {
		t.Error("training round trip diverges")
	}
}
