package davinci_test

import (
	"fmt"
	"math/rand"

	"davinci"
)

// The quickstart: one Maxpool layer on a simulated Ascend 910, comparing
// the standard lowering against the Im2col-based one.
func Example() {
	dev := davinci.NewDevice(davinci.ChipConfig{})
	rng := rand.New(rand.NewSource(1))
	in := davinci.NewRandomInput(rng, 1, 64, 35, 35, 8) // N, C, H, W
	p := davinci.WithInput(davinci.Pooling2D(3, 2, 0), 35, 35)

	_, std, err := dev.MaxPoolForward("standard", in, p)
	if err != nil {
		panic(err)
	}
	out, im, err := dev.MaxPoolForward("im2col", in, p)
	if err != nil {
		panic(err)
	}
	fmt.Println("output shape:", out.Shape)
	fmt.Println("im2col faster:", im.Cycles < std.Cycles)
	// Output:
	// output shape: [1 4 17 17 16]
	// im2col faster: true
}

// Training needs the argmax mask from the forward pass and the Col2Im
// backward kernel (the paper's Fig. 7b and 7c paths).
func ExampleDevice_MaxPoolBackward() {
	dev := davinci.NewDevice(davinci.ChipConfig{Cores: 1})
	rng := rand.New(rand.NewSource(2))
	in := davinci.NewRandomInput(rng, 1, 16, 14, 14, 4)
	p := davinci.WithInput(davinci.Pooling2D(3, 2, 0), 14, 14)

	out, mask, _, err := dev.MaxPoolForwardArgmax("im2col", in, p)
	if err != nil {
		panic(err)
	}
	grad := davinci.NewInput(1, 16, out.Shape[2], out.Shape[3])
	grad.Fill(0x3c00) // 1.0
	dx, _, err := dev.MaxPoolBackward("col2im", mask, grad, p)
	if err != nil {
		panic(err)
	}
	fmt.Println("gradient shape:", dx.Shape)
	// Output:
	// gradient shape: [1 1 14 14 16]
}

// Whole models run through the Sequential container with per-layer cycle
// accounting.
func ExampleSequential() {
	dev := davinci.NewDevice(davinci.ChipConfig{Cores: 1})
	rng := rand.New(rand.NewSource(3))
	weights := davinci.NewNCHW(16, 16, 3, 3)
	weights.FillRandom(rng, 0.2)

	model := &davinci.Sequential{Layers: []davinci.Layer{
		&davinci.Conv2DLayer{Weights: weights, Stride: 1, Pad: 1},
		&davinci.MaxPool2DLayer{Kernel: 2, Stride: 2},
	}}
	in := davinci.NewRandomInput(rng, 1, 16, 8, 8, 1)
	out, reports, _, err := dev.RunModel(model, in)
	if err != nil {
		panic(err)
	}
	fmt.Println("layers run:", len(reports))
	fmt.Println("final shape:", out.Shape)
	// Output:
	// layers run: 2
	// final shape: [1 1 4 4 16]
}
