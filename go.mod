module davinci

go 1.22
