// Network: execute an InceptionV3-style stem (convolutions + the paper's
// pooling layers) end to end on the simulated device, with a per-layer
// cycle and memory-traffic profile — the report a framework integrating
// these kernels would show. Running the same network with standard vs
// Im2col pooling demonstrates the paper's end-to-end effect: pooling is a
// small fraction of the network next to convolution, but "a naive
// implementation can hinder the overall performance of a CNN" (§I).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"davinci"
	"davinci/internal/nn"
	"davinci/internal/tensor"
)

func stem(rng *rand.Rand, poolVariant string) *nn.Sequential {
	w := func(co, c, k int) *davinci.Tensor {
		t := tensor.New(co, c, k, k)
		t.FillRandom(rng, 0.15)
		return t
	}
	return &nn.Sequential{Layers: []nn.Layer{
		&nn.Conv2D{Tag: "conv1 3x3/2", Weights: w(32, 16, 3), Stride: 2},
		&nn.Conv2D{Tag: "conv2 3x3/1", Weights: w(32, 32, 3), Stride: 1, Pad: 1},
		&nn.MaxPool2D{Kernel: 3, Stride: 2, Variant: poolVariant},
		&nn.Conv2D{Tag: "conv3 3x3/1", Weights: w(64, 32, 3), Stride: 1, Pad: 1},
		&nn.MaxPool2D{Kernel: 3, Stride: 2, Variant: poolVariant},
		&nn.AvgPool2D{Kernel: 3, Stride: 3, Variant: "im2col"},
	}}
}

func main() {
	dev := davinci.NewDevice(davinci.ChipConfig{})
	in := davinci.NewRandomInput(rand.New(rand.NewSource(1)), 1, 16, 71, 71, 1)

	var outputs [2]*davinci.Tensor
	var totals [2]int64
	for i, variant := range []string{"standard", "im2col"} {
		// Same seed: identical weights across the two runs.
		model := stem(rand.New(rand.NewSource(42)), variant)
		out, reports, total, err := model.Forward(dev.Chip, in)
		if err != nil {
			log.Fatal(err)
		}
		outputs[i], totals[i] = out, total
		fmt.Printf("stem with %s pooling (input 71x71x16):\n", variant)
		for _, r := range reports {
			fmt.Printf("  %-22s -> %v %10d cycles  (GM: %6.1f KiB in, %6.1f KiB out)\n",
				r.Name, r.OutShape[2:4], r.Cycles,
				float64(r.BytesIn)/1024, float64(r.BytesOut)/1024)
		}
		fmt.Printf("  %-22s    %s %10d cycles\n\n", "TOTAL", "        ", total)
	}
	if tensor.MaxAbsDiff(outputs[0], outputs[1]) != 0 {
		log.Fatal("pooling variant changed the network output")
	}
	fmt.Printf("identical outputs; network-level speedup from pooling alone: %.2fx\n",
		float64(totals[0])/float64(totals[1]))
	fmt.Println("(pooling is cheap next to convolution, but the naive version still drags the whole stem)")
}
