// TVM-style DSL: write MaxPool exactly as Listing 1 of the paper, then
// lower it with four different schedules — the algorithm never changes,
// only the execution strategy (§IV-A) — and compare cycle counts. The
// Im2col schedule corresponds to declaring the Im2Col custom intrinsic,
// which is how the paper's implementation plugs the instruction into TVM.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/dsl"
	"davinci/internal/tensor"
)

func main() {
	const (
		ih, iw = 41, 41
		kh, kw = 3, 3
		sh, sw = 2, 2
		oh, ow = (ih-kh)/sh + 1, (iw-kw)/sw + 1
	)

	// The algorithm: Listing 1, verbatim.
	input := dsl.NewPlaceholder("input", 1, 1, ih, iw, tensor.C0)
	redH := dsl.ReduceAxis("red_h", kh)
	redW := dsl.ReduceAxis("red_w", kw)
	output := dsl.Compute("output", []int{1, 1, oh, ow, tensor.C0}, func(ix ...dsl.Index) dsl.Expr {
		n, c1, h, w, c0 := ix[0], ix[1], ix[2], ix[3], ix[4]
		return dsl.Max(input.At(n, c1,
			h.Mul(sh).AddAxis(redH),
			w.Mul(sw).AddAxis(redW),
			c0), redH, redW)
	})

	rng := rand.New(rand.NewSource(5))
	in := tensor.New(1, 1, ih, iw, tensor.C0)
	in.FillRandom(rng, 8)
	binding := map[*dsl.Placeholder]*tensor.Tensor{input: in}

	// The specification: the DSL interpreter.
	want, err := dsl.Eval(output, binding)
	if err != nil {
		log.Fatal(err)
	}

	// The strategies: four schedules of the same algorithm.
	schedules := []struct {
		name string
		s    *dsl.Schedule
	}{
		{"standard (Listing 1 lowering)", dsl.CreateSchedule(output)},
		{"im2col (Im2Col intrinsic)", dsl.CreateSchedule(output).TensorizeIm2col()},
		{"expansion (vector copies)", dsl.CreateSchedule(output).Expand()},
		{"x-y split (Lai et al.)", dsl.CreateSchedule(output).SplitXY()},
	}
	fmt.Printf("maxpool %dx%d k(%d,%d) s(%d,%d), one AI Core:\n", ih, iw, kh, kw, sh, sw)
	for _, sc := range schedules {
		core := aicore.New(buffer.Config{}, nil)
		got, st, err := dsl.Build(core, sc.s, binding)
		if err != nil {
			log.Fatal(err)
		}
		if tensor.MaxAbsDiff(got, want) != 0 {
			log.Fatalf("%s: schedule changed the result", sc.name)
		}
		fmt.Printf("  %-32s %8d cycles  (%5d instructions)  bit-identical\n",
			sc.name, st.Cycles, st.Instrs)
	}
	fmt.Println("\nschedules changed performance, never results — the §IV-A contract")
}
