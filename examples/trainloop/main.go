// Trainloop: train a small conv -> maxpool network end to end on the
// simulated device. Every tensor operation runs through the simulator's
// instruction streams: the forward convolution (Im2Col -> Cube MMAD), the
// Fig. 7b forward pooling with the argmax mask, the Fig. 7c Col2Im-based
// pooling backward, and the weight gradient (dY^T x im2col(x) with the
// SCU transpose). The host only applies the SGD update and the loss
// derivative, as a framework would.
//
// The loss against a fixed target decreases monotonically — the simulated
// kernels compute real gradients, at simulated-cycle prices the paper's
// variants change by 5x.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ops"
	"davinci/internal/tensor"
)

func main() {
	const (
		ih, iw = 12, 12
		ch     = 16
		lr     = 0.02
		steps  = 12
	)
	convP := isa.ConvParams{Ih: ih, Iw: iw, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	poolP := isa.ConvParams{Ih: ih, Iw: iw, Kh: 2, Kw: 2, Sh: 2, Sw: 2}

	rng := rand.New(rand.NewSource(5))
	core := aicore.New(buffer.Config{}, nil)

	// Compile the four kernels once; the loop replays the cached plans.
	spec := ops.SpecFor(core)
	convPl, err := ops.PlanConv2D(spec, convP, ch, ch)
	if err != nil {
		log.Fatal(err)
	}
	poolPl, err := ops.PlanMaxPoolForwardArgmax("im2col", spec, poolP)
	if err != nil {
		log.Fatal(err)
	}
	poolBwdPl, err := ops.PlanMaxPoolBackward("col2im", spec, poolP)
	if err != nil {
		log.Fatal(err)
	}
	dwPl, err := ops.PlanConv2DBackwardWeights(spec, convP, ch, ch)
	if err != nil {
		log.Fatal(err)
	}

	x := tensor.New(1, 1, ih, iw, tensor.C0)
	x.FillRandom(rng, 0.5)
	target := tensor.New(1, 1, ih/2, iw/2, tensor.C0)
	target.FillRandom(rng, 0.5)
	weights := tensor.New(ch, ch, 3, 3)
	weights.FillRandom(rng, 0.1)

	var total int64
	fmt.Printf("training conv3x3 -> maxpool2x2 against a fixed target (lr %g):\n", lr)
	prev := 1e30
	for step := 0; step < steps; step++ {
		// Forward: conv on the Cube, pooling with the saved argmax mask.
		convOuts, st1, err := convPl.Run(core, x, weights)
		if err != nil {
			log.Fatal(err)
		}
		y1 := convOuts[0]
		poolOuts, st2, err := poolPl.Run(core, y1)
		if err != nil {
			log.Fatal(err)
		}
		y2, mask := poolOuts[0], poolOuts[1]

		// Loss layer (host, like a framework): L = mean (y2-t)^2.
		var loss float64
		dy2 := tensor.New(1, 1, ih/2, iw/2, tensor.C0)
		for i := 0; i < y2.Len(); i++ {
			d := fp16.ToFloat64(y2.AtFlat(i)) - fp16.ToFloat64(target.AtFlat(i))
			loss += d * d
			dy2.SetFlat(i, fp16.FromFloat64(2*d/float64(y2.Len())))
		}
		loss /= float64(y2.Len())

		// Backward: Col2Im pooling backward, then the weight gradient.
		bwdOuts, st3, err := poolBwdPl.Run(core, mask, dy2)
		if err != nil {
			log.Fatal(err)
		}
		dy1 := bwdOuts[0]
		dwOuts, st4, err := dwPl.Run(core, dy1, x)
		if err != nil {
			log.Fatal(err)
		}
		dw := dwOuts[0]

		// SGD (host).
		for i := 0; i < weights.Len(); i++ {
			w := fp16.ToFloat64(weights.AtFlat(i)) - lr*fp16.ToFloat64(dw.AtFlat(i))
			weights.SetFlat(i, fp16.FromFloat64(w))
		}

		stepCycles := st1.Cycles + st2.Cycles + st3.Cycles + st4.Cycles
		total += stepCycles
		fmt.Printf("  step %2d: loss %.6f  (%6d sim cycles)\n", step, loss, stepCycles)
		if loss > prev*1.0001 {
			log.Fatalf("loss increased at step %d: %v -> %v", step, prev, loss)
		}
		prev = loss
	}
	fmt.Printf("\nloss decreased monotonically over %d steps; %d total simulated cycles\n", steps, total)
	fmt.Println("forward conv, pooling with argmax, Col2Im backward and dW all ran on the device")
}
