// Quickstart: run the same Maxpool layer with the standard lowering and
// the Im2col-based lowering on a simulated Ascend 910, and print the
// speedup the paper's Fig. 7a reports.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"davinci"
)

func main() {
	// A simulated Ascend 910: 32 AI Cores, 1 MiB L1, 256 KiB Unified
	// Buffer per core, calibrated cycle-cost model.
	dev := davinci.NewDevice(davinci.ChipConfig{})

	// The largest InceptionV3 Maxpool input from Table I: 147x147x64,
	// kernel (3,3), stride (2,2), no padding.
	rng := rand.New(rand.NewSource(1))
	in := davinci.NewRandomInput(rng, 1, 64, 147, 147, 8)
	p := davinci.WithInput(davinci.Pooling2D(3, 2, 0), 147, 147)

	fmt.Println("Maxpool forward, 147x147x64, kernel (3,3), stride (2,2):")
	var std, im int64
	for _, variant := range []string{"standard", "im2col"} {
		out, stats, err := dev.MaxPoolForward(variant, in, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %8d cycles  (%d instructions, output %v)\n",
			variant, stats.Cycles, stats.Work.Instrs, out.Shape)
		if variant == "standard" {
			std = stats.Cycles
		} else {
			im = stats.Cycles
		}
	}
	fmt.Printf("\nIm2col-based implementation speedup: %.2fx (paper: 3.2x at this size)\n",
		float64(std)/float64(im))
}
