// Convolution: the workload the Im2Col instruction was designed for
// (paper §II-A, §III-C). This example runs a 3x3 convolution on the
// simulated Cube unit — Im2Col loads in repeat mode 0 feed L0A, packed
// weights feed L0B, MMAD accumulates in fp32 — and verifies the result
// against the float32 reference model. It then reuses the very same
// Im2Col machinery for a pooling layer, which is the paper's point.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"davinci"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func main() {
	dev := davinci.NewDevice(davinci.ChipConfig{Cores: 1})
	rng := rand.New(rand.NewSource(21))

	// A ResNet-style block input: 28x28, 32 channels, SAME padding.
	p := davinci.WithInput(davinci.Pooling2D(3, 1, 1), 28, 28)
	in := davinci.NewRandomInput(rng, 1, 32, 28, 28, 1)

	weights := davinci.NewNCHW(64, 32, 3, 3) // (Co, C, Kh, Kw)
	weights.FillRandom(rng, 0.2)

	out, stats, err := dev.Conv2D(in, weights, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conv 28x28x32 -> %v on the Cube unit: %d cycles\n", out.Shape, stats.Cycles)
	fmt.Printf("  %d instructions across pipes (Cube MMADs included)\n", stats.Work.Instrs)

	// Verify against the float32 reference (the Cube accumulates fp32 in
	// a different association order, so allow a small tolerance).
	want := ref.Conv2D(in, weights, p)
	if d := tensor.MaxAbsDiff(out, want); d > 0.5 {
		log.Fatalf("conv diverges from reference: max diff %v", d)
	}
	fmt.Println("  verified against the float32 reference model")

	// The same Im2Col instructions also accelerate pooling (the paper's
	// contribution): run Maxpool on the conv output.
	poolP := davinci.PoolParams{Ih: out.Shape[2], Iw: out.Shape[3], Kh: 3, Kw: 3, Sh: 2, Sw: 2}
	pooled, pst, err := dev.MaxPoolForward("im2col", out, poolP)
	if err != nil {
		log.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(pooled, ref.MaxPoolForward(out, poolP)); d != 0 {
		log.Fatalf("pooling diverges: %v", d)
	}
	fmt.Printf("conv -> maxpool(im2col) %v: %d cycles, verified\n", pooled.Shape, pst.Cycles)

	// Backward through the convolution: the Cube computes dY x W^T and the
	// Col2Im instruction performs the merge the transform was named for
	// (paper II-B).
	dy := davinci.NewRandomInput(rng, 1, 64, out.Shape[2], out.Shape[3], 1)
	dx, bst, err := dev.Conv2DBackwardData(dy, weights, p, 32)
	if err != nil {
		log.Fatal(err)
	}
	wantDx := ref.Conv2DBackwardData(dy, weights, p, 32)
	if d := tensor.MaxAbsDiff(dx, wantDx); d > 0.1 {
		log.Fatalf("conv backward diverges: max diff %v", d)
	}
	fmt.Printf("conv backward-data %v: %d cycles, verified (Cube matmul + Col2Im merge)\n", dx.Shape, bst.Cycles)
	fmt.Println("one instruction family (Im2Col/Col2Im) served forward, backward, and pooling")
}
