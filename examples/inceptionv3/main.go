// InceptionV3: run every Maxpool layer of the CNNs in Table I through the
// simulated device — forward, forward-with-argmax and backward, standard
// vs accelerated — and print a per-layer report like the one a model
// profiler would produce. Layers whose working set exceeds the simulated
// L1 (the VGG16 224x224 input) stream through rotating L1 row windows —
// the "further tiling" the real schedules need for such sizes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"davinci"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

func main() {
	dev := davinci.NewDevice(davinci.ChipConfig{})
	rng := rand.New(rand.NewSource(7))

	fmt.Println("Maxpool layers of Table I on the simulated Ascend 910 (cycles):")
	fmt.Printf("%-28s %10s %10s %8s | %10s %10s %8s\n",
		"layer", "fwd std", "fwd im2col", "speedup", "bwd std", "bwd col2im", "speedup")
	fmt.Println(strings.Repeat("-", 96))

	var net string
	for _, layer := range workloads.TableI {
		if layer.Network != net {
			net = layer.Network
			fmt.Printf("%s\n", net)
		}
		label := fmt.Sprintf("  input %d: %dx%dx%d k%d s%d", layer.Index, layer.H, layer.W, layer.C, layer.Kernel, layer.Stride)
		p := layer.Params()
		in := layer.Input(rng)

		fwdStd, err1 := run(dev, "standard", in, p)
		fwdIm, err2 := run(dev, "im2col", in, p)
		if err1 != nil || err2 != nil {
			fmt.Printf("%-28s needs further tiling on this device (%v)\n", label, firstErr(err1, err2))
			continue
		}

		// Backward: build the mask once with the reference model.
		mask := ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		grad := tensor.New(1, layer.C1(), oh, ow, tensor.C0)
		grad.FillRandom(rng, 1)
		bwdStd, err1 := runBwd(dev, "standard", mask, grad, p)
		bwdCi, err2 := runBwd(dev, "col2im", mask, grad, p)
		if err1 != nil || err2 != nil {
			fmt.Printf("%-28s backward needs further tiling (%v)\n", label, firstErr(err1, err2))
			continue
		}
		fmt.Printf("%-28s %10d %10d %7.2fx | %10d %10d %7.2fx\n",
			label, fwdStd, fwdIm, float64(fwdStd)/float64(fwdIm),
			bwdStd, bwdCi, float64(bwdStd)/float64(bwdCi))
	}
	fmt.Println()
	fmt.Println("The bold Table-I rows (InceptionV3 inputs 1-3) are the Fig. 7 workloads;")
	fmt.Println("run cmd/davinci-bench for the full figure series.")
}

func run(dev *davinci.Device, variant string, in *davinci.Tensor, p davinci.PoolParams) (int64, error) {
	_, st, err := dev.MaxPoolForward(variant, in, p)
	if err != nil {
		return 0, err
	}
	return st.Cycles, nil
}

func runBwd(dev *davinci.Device, variant string, mask, grad *davinci.Tensor, p davinci.PoolParams) (int64, error) {
	_, st, err := dev.MaxPoolBackward(variant, mask, grad, p)
	if err != nil {
		return 0, err
	}
	return st.Cycles, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	log.Fatal("firstErr called without error")
	return nil
}
