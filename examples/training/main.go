// Training: exercise the full training path of a Maxpool layer — forward
// with the argmax mask, then backward through the Col2Im-based kernel —
// and validate the produced gradients with a numerical directional
// derivative, the standard gradient check.
//
// The input uses distinct values spaced at least 1 apart and a 0.25
// perturbation, so binary16 arithmetic is exact and the argmax never
// flips: the check holds to the bit.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"davinci"
	"davinci/internal/fp16"
)

func main() {
	const (
		h, w = 18, 18
		c    = 16
	)
	dev := davinci.NewDevice(davinci.ChipConfig{Cores: 1})
	p := davinci.WithInput(davinci.Pooling2D(3, 2, 0), h, w)

	// Build an input of distinct small values (a random permutation), so
	// every patch has a unique maximum.
	rng := rand.New(rand.NewSource(11))
	in := davinci.NewInput(1, c, h, w)
	perm := rng.Perm(in.Len())
	for i := 0; i < in.Len(); i++ {
		in.SetFlat(i, fp16.FromFloat64(float64(perm[i]%512)))
	}

	// Forward with mask (the accelerated Fig. 7b kernel).
	out, mask, stFwd, err := dev.MaxPoolForwardArgmax("im2col", in, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward+argmax: output %v, %d cycles\n", out.Shape, stFwd.Cycles)

	// Upstream gradients: small integers.
	grad := davinci.NewInput(1, c, out.Shape[2], out.Shape[3])
	for i := 0; i < grad.Len(); i++ {
		grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(4)+1)))
	}

	// Backward (the accelerated Fig. 7c kernel).
	dx, stBwd, err := dev.MaxPoolBackward("col2im", mask, grad, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backward (col2im): gradient %v, %d cycles\n", dx.Shape, stBwd.Cycles)

	// Numerical gradient check on a sample of input positions:
	// dL/dx_i == (L(x + eps*e_i) - L(x)) / eps with L = <maxpool(x), G>.
	loss := func(x *davinci.Tensor) float64 {
		o, _, err := dev.MaxPoolForward("im2col", x, p)
		if err != nil {
			log.Fatal(err)
		}
		var l float64
		for i := 0; i < o.Len(); i++ {
			l += fp16.ToFloat64(o.AtFlat(i)) * fp16.ToFloat64(grad.AtFlat(i))
		}
		return l
	}
	base := loss(in)
	const eps = 0.25
	checked, failures := 0, 0
	for _, idx := range rng.Perm(in.Len())[:64] {
		perturbed := in.Clone()
		perturbed.SetFlat(idx, fp16.Add(perturbed.AtFlat(idx), fp16.FromFloat64(eps)))
		numeric := (loss(perturbed) - base) / eps
		analytic := fp16.ToFloat64(dx.AtFlat(idx))
		if numeric != analytic {
			failures++
			fmt.Printf("  MISMATCH at %d: analytic %v, numeric %v\n", idx, analytic, numeric)
		}
		checked++
	}
	if failures > 0 {
		log.Fatalf("gradient check failed at %d of %d positions", failures, checked)
	}
	fmt.Printf("gradient check: %d/%d sampled positions exact\n", checked, checked)
	fmt.Println("training path verified: forward mask + Col2Im backward produce true gradients")
}
