// Benchmarks regenerating the paper's evaluation (§VI): one benchmark per
// table and figure, reporting the simulated cycle counts via
// b.ReportMetric("sim-cycles"). Wall-clock ns/op measures the simulator
// itself; sim-cycles is the number the paper's graphs plot.
//
// Run with: go test -bench=. -benchmem
package davinci

import (
	"fmt"
	"math/rand"
	"testing"

	"davinci/internal/bench"
	"davinci/internal/chip"
	"davinci/internal/isa"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

// BenchmarkTable1Workloads regenerates Table I (a data table: it validates
// and renders the recorded CNN layer shapes).
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table1()
		if len(t.Rows) != 4 {
			b.Fatal("Table I malformed")
		}
	}
	b.ReportMetric(float64(len(workloads.TableI)), "layers")
}

func benchFig7(b *testing.B, run func(dev *Device, layer workloads.CNNLayer, variant string) (int64, error), variants []string) {
	for _, layer := range workloads.InceptionV3Fig7() {
		layer := layer
		rng := rand.New(rand.NewSource(7))
		for _, variant := range variants {
			variant := variant
			b.Run(fmt.Sprintf("%dx%dx%d/%s", layer.H, layer.W, layer.C, variant), func(b *testing.B) {
				dev := NewDevice(ChipConfig{})
				var cycles int64
				for i := 0; i < b.N; i++ {
					c, err := run(dev, layer, variant)
					if err != nil {
						b.Fatal(err)
					}
					cycles = c
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
				_ = rng
			})
		}
	}
}

// BenchmarkFig7aMaxpoolForward regenerates Fig. 7a.
func BenchmarkFig7aMaxpoolForward(b *testing.B) {
	benchFig7(b, func(dev *Device, layer workloads.CNNLayer, variant string) (int64, error) {
		in := layer.Input(rand.New(rand.NewSource(1)))
		_, st, err := dev.MaxPoolForward(variant, in, layer.Params())
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}, []string{"standard", "im2col"})
}

// BenchmarkFig7bMaxpoolArgmax regenerates Fig. 7b.
func BenchmarkFig7bMaxpoolArgmax(b *testing.B) {
	benchFig7(b, func(dev *Device, layer workloads.CNNLayer, variant string) (int64, error) {
		in := layer.Input(rand.New(rand.NewSource(2)))
		_, _, st, err := dev.MaxPoolForwardArgmax(variant, in, layer.Params())
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}, []string{"standard", "im2col"})
}

// BenchmarkFig7cMaxpoolBackward regenerates Fig. 7c.
func BenchmarkFig7cMaxpoolBackward(b *testing.B) {
	masks := map[int]*Tensor{}
	grads := map[int]*Tensor{}
	for _, layer := range workloads.InceptionV3Fig7() {
		in := layer.Input(rand.New(rand.NewSource(3)))
		p := layer.Params()
		masks[layer.H] = ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		g := tensor.New(1, layer.C1(), oh, ow, tensor.C0)
		g.FillRandom(rand.New(rand.NewSource(4)), 1)
		grads[layer.H] = g
	}
	benchFig7(b, func(dev *Device, layer workloads.CNNLayer, variant string) (int64, error) {
		_, st, err := dev.MaxPoolBackward(variant, masks[layer.H], grads[layer.H], layer.Params())
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}, []string{"standard", "col2im"})
}

func benchFig8(b *testing.B, stride int) {
	variants := []string{"standard", "im2col", "expansion"}
	if stride == 2 {
		variants = append(variants, "xysplit")
	}
	sizes := workloads.Fig8Sizes(3, stride, 0)
	// The paper sweeps every even size; benchmark the endpoints and middle
	// to bound runtime (cmd/davinci-bench prints the full series).
	pick := []int{sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]}
	for _, hw := range pick {
		p := isa.ConvParams{Ih: hw, Iw: hw, Kh: 3, Kw: 3, Sh: stride, Sw: stride}
		in := tensor.New(1, 1, hw, hw, tensor.C0)
		in.FillRandom(rand.New(rand.NewSource(int64(hw))), 8)
		for _, variant := range variants {
			variant := variant
			b.Run(fmt.Sprintf("%dx%d/%s", hw, hw, variant), func(b *testing.B) {
				dev := NewDevice(ChipConfig{Cores: 1})
				var cycles int64
				for i := 0; i < b.N; i++ {
					_, st, err := dev.MaxPoolForward(variant, in, p)
					if err != nil {
						b.Fatal(err)
					}
					cycles = st.Cycles
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkFig8Stride11 regenerates Fig. 8a (stride 1).
func BenchmarkFig8Stride11(b *testing.B) { benchFig8(b, 1) }

// BenchmarkFig8Stride22 regenerates Fig. 8b (stride 2, incl. X-Y split).
func BenchmarkFig8Stride22(b *testing.B) { benchFig8(b, 2) }

// BenchmarkFig8Stride33 regenerates Fig. 8c (stride 3).
func BenchmarkFig8Stride33(b *testing.B) { benchFig8(b, 3) }

// BenchmarkAblationPipelineOverlap quantifies the implicit-scoreboard
// pipeline overlap (DESIGN.md §4): the same im2col kernel with and without
// inter-pipe overlap.
func BenchmarkAblationPipelineOverlap(b *testing.B) {
	layer := workloads.InceptionV3Fig7()[1] // 71,71,192
	in := layer.Input(rand.New(rand.NewSource(5)))
	for _, serialize := range []bool{false, true} {
		name := "overlapped"
		if serialize {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			dev := NewDevice(ChipConfig{Serialize: serialize})
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, st, err := dev.MaxPoolForward("im2col", in, layer.Params())
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationSCURate sweeps the Im2Col per-fractal cost, the
// cost-model choice that decides the stride-(1,1) crossover of Fig. 8a.
func BenchmarkAblationSCURate(b *testing.B) {
	p := isa.ConvParams{Ih: 41, Iw: 41, Kh: 3, Kw: 3, Sh: 1, Sw: 1}
	in := tensor.New(1, 1, 41, 41, tensor.C0)
	in.FillRandom(rand.New(rand.NewSource(6)), 8)
	for _, rate := range []int64{2, 6, 12, 24} {
		b.Run(fmt.Sprintf("%dcyc-per-fractal", rate), func(b *testing.B) {
			cm := isa.DefaultCostModel()
			cm.Im2ColFractal = rate
			dev := NewDevice(ChipConfig{Cores: 1, Cost: cm})
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, st, err := dev.MaxPoolForward("im2col", in, p)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationCores measures multi-core scaling on a 12-tile layer.
func BenchmarkAblationCores(b *testing.B) {
	layer := workloads.InceptionV3Fig7()[1] // C1 = 12
	in := layer.Input(rand.New(rand.NewSource(8)))
	for _, cores := range []int{1, 2, 4, 12, 32} {
		b.Run(fmt.Sprintf("cores-%d", cores), func(b *testing.B) {
			dev := NewDevice(ChipConfig{Cores: cores})
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, st, err := dev.MaxPoolForward("im2col", in, layer.Params())
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkConvCube exercises the Cube-unit convolution substrate.
func BenchmarkConvCube(b *testing.B) {
	p := isa.ConvParams{Ih: 28, Iw: 28, Kh: 3, Kw: 3, Sh: 1, Sw: 1, Pt: 1, Pb: 1, Pl: 1, Pr: 1}
	rng := rand.New(rand.NewSource(9))
	in := tensor.New(1, 2, 28, 28, tensor.C0)
	in.FillRandom(rng, 1)
	w := tensor.New(32, 32, 3, 3)
	w.FillRandom(rng, 1)
	dev := NewDevice(ChipConfig{Cores: 1})
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, st, err := dev.Conv2D(in, w, p)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

var _ = chip.Config{} // keep the chip import for documentation references
