package davinci_test

import (
	"testing"

	"davinci"
)

// FuzzConvParams drives MaxPoolForward through the public Device API with
// arbitrary layer parameters. The contract under fuzzing:
//
//   - no parameter combination may panic or hang the chip — malformed
//     layers must be rejected by validation at the chip entry points;
//   - success implies the parameters validate and the output has the
//     analytically expected pooled shape;
//   - parameters that fail ConvParams.Validate must be rejected.
//
// Magnitudes are folded into a small range so each iteration stays cheap
// (large sizes only grow the tensors; the interesting boundaries — zero,
// negative, pad >= kernel, kernel > padded input — survive the fold).
func FuzzConvParams(f *testing.F) {
	f.Add(8, 8, 3, 3, 2, 2, 0, 0, 0, 0)    // clean stride-2 pool
	f.Add(16, 16, 2, 2, 2, 2, 1, 1, 1, 1)  // VGG16-style with padding
	f.Add(35, 35, 3, 3, 2, 2, 0, 0, 0, 0)  // Table I InceptionV3 pool 3
	f.Add(0, 5, 3, 3, 2, 2, 0, 0, 0, 0)    // zero input height
	f.Add(8, 8, -1, 3, 1, 1, 0, 0, 0, 0)   // negative kernel
	f.Add(8, 8, 3, 3, 0, 2, 0, 0, 0, 0)    // zero stride
	f.Add(8, 8, 3, 3, 1, 1, 3, 3, 3, 3)    // pad >= kernel
	f.Add(2, 2, 8, 8, 1, 1, 0, 0, 0, 0)    // kernel > input
	f.Fuzz(func(t *testing.T, ih, iw, kh, kw, sh, sw, pt, pb, pl, pr int) {
		fold := func(v, lo, hi int) int {
			span := hi - lo + 1
			m := (v-lo)%span + lo
			if m < lo {
				m += span
			}
			return m
		}
		p := davinci.PoolParams{
			Ih: fold(ih, -2, 24), Iw: fold(iw, -2, 24),
			Kh: fold(kh, -2, 6), Kw: fold(kw, -2, 6),
			Sh: fold(sh, -2, 6), Sw: fold(sw, -2, 6),
			Pt: fold(pt, -2, 4), Pb: fold(pb, -2, 4),
			Pl: fold(pl, -2, 4), Pr: fold(pr, -2, 4),
		}
		// The input matches the declared size when that size is sane;
		// otherwise validation must reject p before the shape can matter.
		h, w := p.Ih, p.Iw
		if h < 1 {
			h = 1
		}
		if w < 1 {
			w = 1
		}
		// A fresh device per iteration: the plan cache must not accrete
		// one compiled kernel per fuzz input across the run.
		dev := davinci.NewDevice(davinci.ChipConfig{Cores: 2})
		in := davinci.NewInput(1, 16, h, w)
		out, _, err := dev.MaxPoolForward("im2col", in, p)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("run succeeded for invalid params %+v: %v", p, verr)
		}
		oh, ow := p.OutDims()
		want := []int{1, 1, oh, ow, davinci.C0}
		if len(out.Shape) != 5 {
			t.Fatalf("output shape %v, want %v", out.Shape, want)
		}
		for i, d := range want {
			if out.Shape[i] != d {
				t.Fatalf("output shape %v, want %v", out.Shape, want)
			}
		}
	})
}
