// Package davinci is a functional and cycle-timing simulator of Huawei's
// DaVinci AI-accelerator architecture, built to reproduce the IPDPSW 2021
// paper "Pooling Acceleration in the DaVinci Architecture Using Im2col and
// Col2im Instructions" (Rohwedder et al.).
//
// It provides:
//
//   - a simulated Ascend-910-class device (32 AI Cores with Cube, Vector
//     and Scalar units, scratch-pad buffers, and the Storage Conversion
//     Unit's Im2Col and Col2Im instructions);
//   - every pooling kernel variant the paper evaluates — standard,
//     Im2col-based, expansion-based, X-Y split, argmax-saving forward, and
//     vadd- or Col2Im-based backward — plus convolution on the Cube unit;
//   - deterministic cycle counts from a calibrated cost model, so the
//     paper's figures can be regenerated (see cmd/davinci-bench).
//
// Quick start:
//
//	dev := davinci.NewDevice(davinci.ChipConfig{})
//	in := davinci.NewInput(1, 64, 147, 147) // N, C, H, W
//	p := davinci.Pooling2D(3, 2, 0)         // kernel 3, stride 2, no pad
//	p.Ih, p.Iw = 147, 147
//	out, stats, err := dev.MaxPoolForward("im2col", in, p)
//
// Tensors use the fractal NC1HWC0 layout (paper §III-B); convert from and
// to NCHW with FromNCHW and ToNCHW.
package davinci

import (
	"math/rand"

	"davinci/internal/chip"
	"davinci/internal/faults"
	"davinci/internal/isa"
	"davinci/internal/nn"
	"davinci/internal/ops"
	"davinci/internal/serve"
	"davinci/internal/tensor"
)

// Re-exported core types. They alias internal types so that the whole
// simulator surface (methods, fields) is usable through this package.
type (
	// Tensor is a dense Float16 tensor in one of the DaVinci layouts.
	Tensor = tensor.Tensor
	// PoolParams describes a pooling (or convolution) layer: input size,
	// padding, strides and kernel (paper §III-C).
	PoolParams = isa.ConvParams
	// ChipConfig configures the simulated device; the zero value is an
	// Ascend 910 (32 cores, 1 MiB L1, 256 KiB UB, ...).
	ChipConfig = chip.Config
	// Stats reports a run's simulated timing.
	Stats = chip.Stats
	// CostModel is the cycle-cost model; override ChipConfig.Cost with a
	// modified copy for sensitivity studies.
	CostModel = isa.CostModel
	// PlanCacheStats snapshots the device's kernel plan cache: programs
	// compiled, cache hits and misses. Available per run via Stats.Plans
	// and cumulatively via Device.PlanStats.
	PlanCacheStats = ops.CacheStats
	// Resilience configures the fault-tolerant tile executor (watchdog,
	// retry/requeue, graceful degradation) via ChipConfig.Resilience.
	Resilience = chip.Resilience
	// DegradedTile reports one tile computed by the host-side golden
	// model after its hardware retries were exhausted (Stats.Degraded).
	DegradedTile = chip.DegradedTile
	// TileError is a typed tile failure carrying the tile identity, core
	// index, attempt number and (for hangs) the blocked pipe, unsatisfied
	// wait_flag and stall-trace tail.
	TileError = chip.TileError
	// FaultConfig describes a deterministic seeded fault schedule for the
	// chaos harness (internal/faults).
	FaultConfig = faults.Config
	// FaultKind classifies one injected fault (transient, bitflip,
	// droppedflag, stuckpipe).
	FaultKind = faults.Kind
	// FaultInjector decides and arms seeded faults; pass one through
	// Resilience.Injector.
	FaultInjector = faults.Injector
)

// Tile-failure categories, matchable with errors.Is against a failed
// run's error (see chip.TileError).
var (
	// ErrTileFault: an attempt failed with a detected hardware fault.
	ErrTileFault = chip.ErrTileFault
	// ErrTileHang: an attempt hung and the watchdog reclaimed the core.
	ErrTileHang = chip.ErrTileHang
	// ErrTilePanic: a tile worker panicked and was recovered.
	ErrTilePanic = chip.ErrTilePanic
	// ErrCoreFailed: a core exceeded its failure budget.
	ErrCoreFailed = chip.ErrCoreFailed
)

// NewFaultInjector creates a deterministic seeded fault injector for
// chaos runs; wire it into ChipConfig.Resilience.Injector. Its
// faults_injected counters register in the device's metrics registry
// when the device is built.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg, nil) }

// ParseFaultKinds parses a comma-separated fault-kind list, e.g.
// "transient,stuckpipe" (see internal/faults for the kind names).
func ParseFaultKinds(s string) ([]FaultKind, error) { return faults.ParseKinds(s) }

// C0 is the fractal channel-split length for Float16 (16 elements).
const C0 = tensor.C0

// Device is a simulated DaVinci device. Kernels are compiled once per
// (variant, shape) into the device's plan cache and replayed for every
// tile and every repeated call; PlanStats reports the cache counters.
type Device struct {
	*chip.Chip
}

// NewDevice creates a device; zero-valued config fields take Ascend 910
// defaults.
func NewDevice(cfg ChipConfig) *Device {
	return &Device{Chip: chip.New(cfg)}
}

// DefaultCostModel returns a copy of the calibrated cycle-cost model.
func DefaultCostModel() *CostModel { return isa.DefaultCostModel() }

// Pooling2D builds PoolParams for a square kernel/stride/padding; set
// Ih/Iw (the input size) before use, or use WithInput.
func Pooling2D(kernel, stride, pad int) PoolParams {
	return PoolParams{
		Kh: kernel, Kw: kernel,
		Sh: stride, Sw: stride,
		Pt: pad, Pb: pad, Pl: pad, Pr: pad,
	}
}

// WithInput returns p with the input size set.
func WithInput(p PoolParams, h, w int) PoolParams {
	p.Ih, p.Iw = h, w
	return p
}

// NewInput allocates a zero NC1HWC0 input tensor for c logical channels.
func NewInput(n, c, h, w int) *Tensor { return tensor.NewFractal(n, c, h, w) }

// NewRandomInput allocates an NC1HWC0 input filled with uniform values in
// [-scale, scale].
func NewRandomInput(rng *rand.Rand, n, c, h, w int, scale float64) *Tensor {
	t := tensor.NewFractal(n, c, h, w)
	t.FillRandom(rng, scale)
	return t
}

// FromNCHW converts an NCHW tensor to the fractal NC1HWC0 layout,
// zero-padding channels to a multiple of 16.
func FromNCHW(t *Tensor) *Tensor { return tensor.ToFractal(t) }

// ToNCHW converts an NC1HWC0 tensor back to NCHW with c logical channels.
func ToNCHW(t *Tensor, c int) *Tensor { return tensor.FromFractal(t, c) }

// NewNCHW allocates a zero NCHW tensor.
func NewNCHW(n, c, h, w int) *Tensor { return tensor.NewNCHW(n, c, h, w) }

// ForwardVariants lists the forward Maxpool implementations ("standard",
// "im2col", "expansion", "xysplit") in a stable order.
func ForwardVariants() []string { return []string{"standard", "im2col", "expansion", "xysplit"} }

// ArgmaxVariants lists the forward-with-mask implementations.
func ArgmaxVariants() []string { return []string{"standard", "im2col"} }

// BackwardVariants lists the backward implementations.
func BackwardVariants() []string { return []string{"standard", "col2im"} }

// AvgVariants lists the Avgpool forward implementations.
func AvgVariants() []string { return []string{"standard", "im2col", "cube"} }

// PackWeightsFractal converts (Co, C, Kh, Kw) convolution weights into the
// Cube unit's fractal operand layout (done offline by frameworks).
func PackWeightsFractal(w *Tensor, p PoolParams) *Tensor {
	return ops.PackWeightsFractal(w, p)
}

// Network building blocks (see internal/nn): a Sequential stack of
// convolution and pooling layers with per-layer cycle accounting.
type (
	// Layer is one network stage.
	Layer = nn.Layer
	// Sequential is a linear layer stack.
	Sequential = nn.Sequential
	// Conv2DLayer is a Cube-unit convolution layer.
	Conv2DLayer = nn.Conv2D
	// MaxPool2DLayer is a max pooling layer with a selectable variant.
	MaxPool2DLayer = nn.MaxPool2D
	// AvgPool2DLayer is an average pooling layer with a selectable variant.
	AvgPool2DLayer = nn.AvgPool2D
	// ParallelLayer runs branches on the same input and concatenates
	// their outputs along the channel dimension (Inception blocks).
	ParallelLayer = nn.Parallel
	// LayerReport records one layer's execution.
	LayerReport = nn.LayerReport
)

// RunModel executes a sequential model on the device, returning the final
// activation, per-layer reports and the total cycles.
func (d *Device) RunModel(m *Sequential, in *Tensor) (*Tensor, []LayerReport, int64, error) {
	return m.Forward(d.Chip, in)
}

// Serving layer (see internal/serve and DESIGN.md §16): a fleet of
// simulated chips behind an asynchronous request path with admission
// control, deadline propagation, continuous batching, load shedding,
// per-chip circuit breakers and golden-model degradation. The contract
// is conservation: every submitted request reaches exactly one terminal
// outcome.
type (
	// Server is the serving fleet; build with NewServer, stop with Close.
	Server = serve.Server
	// ServeConfig sizes the fleet, queue, batching, SLO and degradation
	// policy.
	ServeConfig = serve.Config
	// ServeRequest is one pooling inference request.
	ServeRequest = serve.Request
	// ServeResponse is a request's terminal outcome (completed, degraded,
	// rejected or cancelled) with per-request degradation reporting.
	ServeResponse = serve.Response
	// ServeTicket is the future Submit returns; Wait blocks for the
	// response.
	ServeTicket = serve.Ticket
	// ServeClass is a request priority class; lower classes shed first.
	ServeClass = serve.Class
	// ServeStats is the conservation accounting (Lost() must be zero
	// after a drain).
	ServeStats = serve.Stats
	// LoadOptions configures the open-loop load generator.
	LoadOptions = serve.LoadOptions
	// LoadReport is one load run's outcome profile.
	LoadReport = serve.LoadReport
)

// Priority classes for ServeRequest.Class.
const (
	ClassBatch       = serve.ClassBatch
	ClassStandard    = serve.ClassStandard
	ClassInteractive = serve.ClassInteractive
)

// Typed admission and execution errors, matchable with errors.Is against
// a rejected response's Err.
var (
	// ErrQueueFull: the bounded intake queue is full and no lower-class
	// entry could be evicted.
	ErrQueueFull = serve.ErrQueueFull
	// ErrShedding: the load-shedding controller predicted an SLO bust for
	// this class.
	ErrShedding = serve.ErrShedding
	// ErrDeadlineBudget: the static critical-path bound proves the
	// deadline cannot be met.
	ErrDeadlineBudget = serve.ErrDeadlineBudget
	// ErrServerClosed: submitted after Close.
	ErrServerClosed = serve.ErrClosed
	// ErrChipFailed: the batch failed on-chip and degradation is off.
	ErrChipFailed = serve.ErrChipFailed
)

// NewServer builds and starts a serving fleet. Callers must Close it.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// RunLoad offers open-loop load to a server and waits for every ticket,
// so the report's conservation accounting is exact.
func RunLoad(s *Server, opt LoadOptions) *LoadReport { return serve.RunLoad(s, opt) }
