// Command davinci-serve drives the inference serving layer (internal/serve)
// with an open-loop load generator and reports the overload profile: for
// each offered rate, how many requests completed, degraded, were shed,
// rejected or cancelled, plus goodput and latency quantiles.
//
// Usage:
//
//	davinci-serve [flags]
//
// Each cell of -rates builds a fresh fleet and offers -requests requests
// at that rate (0 = closed burst: everything at once). The conservation
// invariant — offered == completed + degraded + rejected + cancelled,
// nothing lost — is asserted on every cell and violations exit 1; it is
// the serving layer's contract, not an optional check.
//
// -smoke is the CI gate mode: a single deterministic closed burst with
// shedding and chaos forced off, asserting that every request completes
// bit-identically (the fleet guarantees outputs match the golden model)
// and that the accounting reconciles across tickets, server stats and
// published counters.
//
// -chaos threads a seeded fault injector through every chip; with
// -degrade-failure the fleet falls back to the host golden model for
// failing batches, so availability degrades in latency, never in
// correctness.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"davinci/internal/buffer"
	"davinci/internal/chip"
	"davinci/internal/faults"
	"davinci/internal/obs"
	"davinci/internal/serve"
	"davinci/internal/trace"
)

func main() {
	chips := flag.Int("chips", 2, "fleet size (simulated chips)")
	cores := flag.Int("cores", chip.DefaultCores, "AI cores per chip")
	ub := flag.Int("ub", buffer.DefaultUBSize, "Unified Buffer bytes per core")
	l1 := flag.Int("l1", buffer.DefaultL1Size, "L1 buffer bytes per core")
	queue := flag.Int("queue", 16, "intake queue bound (admission fails or evicts beyond it)")
	maxBatch := flag.Int("max-batch", 8, "max same-shape requests coalesced into one chip batch")
	slo := flag.Duration("slo", 2*time.Millisecond, "latency SLO feeding the shedding controller (0 disables shedding)")
	cps := flag.Float64("cps", 1e8, "simulated cycles per second for deadline and SLO math")
	degradeOverload := flag.Bool("degrade-overload", false, "serve shed requests from the host golden model instead of rejecting")
	degradeFailure := flag.Bool("degrade-failure", true, "serve failed batches from the host golden model instead of rejecting")
	breakerLimit := flag.Int("breaker-limit", 3, "consecutive batch failures that open a chip's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 50*time.Millisecond, "open-breaker cooldown before a half-open probe")

	requests := flag.Int("requests", 64, "requests offered per rate cell")
	rates := flag.String("rates", "0,250,1000,4000", "comma-separated offered rates in requests/second (0 = closed burst)")
	seed := flag.Int64("seed", 1, "load generator seed (shapes, classes, payloads)")
	kernel := flag.String("kernel", "", "kernel for every request: maxpool, avgpool, or empty for an alternating mix")
	variant := flag.String("variant", "", "implementation variant (default im2col)")
	deadline := flag.Duration("deadline", 0, "per-request deadline (0 = none)")
	smoke := flag.Bool("smoke", false, "deterministic CI gate: one closed burst, shedding and chaos off, every request must complete")

	chaos := flag.Bool("chaos", false, "inject seeded faults into every chip (the chaos-serving drill)")
	chaosSeed := flag.Int64("chaos-seed", 1234, "fault-schedule seed")
	chaosRate := flag.Float64("chaos-rate", 0.3, "per-(tile,attempt) fault probability")
	chaosKinds := flag.String("chaos-kinds", "transient,bitflip,droppedflag,stuckpipe", "comma-separated fault kinds")
	chaosAttempts := flag.Int("chaos-attempts", 2, "chip-level attempts per tile before the failure escalates to the serving layer")
	chaosMaxPerTile := flag.Int("chaos-maxpertile", 3, "faults charged per tile before its schedule runs clean")
	chaosWatchdog := flag.Duration("chaos-watchdog", 300*time.Millisecond, "wall-clock budget per tile attempt")

	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file; - for stdout")
	spans := flag.String("spans", "", "write the run's trace spans as JSONL to this file; - for stdout")
	maxSpans := flag.Int("max-spans", 65536, "bound span retention (oldest evicted beyond it; 0 = unbounded)")
	serveAddr := flag.String("serve", "", "serve live telemetry (Prometheus /metrics, /debug/spans) on this address until interrupted")
	flag.Parse()

	reg := obs.NewRegistry()
	var tracer *trace.Tracer
	var tc trace.Ctx
	if *spans != "" || *serveAddr != "" {
		tracer = trace.New()
		tracer.SetMaxSpans(*maxSpans)
		tc = tracer.Root()
	}
	if *serveAddr != "" {
		exporter := &obs.Exporter{Registry: reg, Tracer: tracer}
		srv := &http.Server{Addr: *serveAddr, Handler: exporter.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "davinci-serve: -serve: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "davinci-serve: serving telemetry on http://%s/metrics and /debug/spans\n", *serveAddr)
	}

	cfg := serve.Config{
		Chips:             *chips,
		Cores:             *cores,
		Buffers:           buffer.Config{UBSize: *ub, L1Size: *l1},
		QueueLimit:        *queue,
		MaxBatch:          *maxBatch,
		SLO:               *slo,
		CyclesPerSecond:   *cps,
		DegradeOnOverload: *degradeOverload,
		DegradeOnFailure:  *degradeFailure,
		BreakerFailLimit:  *breakerLimit,
		BreakerCooldown:   *breakerCooldown,
		Metrics:           reg,
		Trace:             tc,
	}
	if *chaos && !*smoke {
		kinds, err := faults.ParseKinds(*chaosKinds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "davinci-serve: -chaos-kinds: %v\n", err)
			os.Exit(1)
		}
		cfg.Resilience = chip.Resilience{
			Enabled: true,
			Injector: faults.New(faults.Config{
				Seed:       *chaosSeed,
				Rate:       *chaosRate,
				Kinds:      kinds,
				MaxPerTile: *chaosMaxPerTile,
			}, reg),
			MaxAttempts: *chaosAttempts,
			Watchdog:    *chaosWatchdog,
		}
	}

	var cells []float64
	if *smoke {
		// The smoke gate is one deterministic closed burst: ample queue, no
		// shedding, no deadlines, no faults — every request must complete.
		cells = []float64{0}
		cfg.QueueLimit = *requests
		cfg.SLO = 0
		*deadline = 0
		if *chaos {
			fmt.Fprintln(os.Stderr, "davinci-serve: -smoke forces chaos off (the gate must be deterministic)")
		}
	} else {
		for _, f := range strings.Split(*rates, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			r, err := strconv.ParseFloat(f, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "davinci-serve: -rates: %v\n", err)
				os.Exit(1)
			}
			cells = append(cells, r)
		}
	}
	if len(cells) == 0 {
		fmt.Fprintln(os.Stderr, "davinci-serve: no rate cells to run")
		os.Exit(1)
	}

	fmt.Printf("%-10s  %8s  %9s  %8s  %8s  %9s  %11s  %9s  %9s  %5s\n",
		"cell", "offered", "completed", "degraded", "rejected", "cancelled", "goodput rps", "p50 us", "p99 us", "batch")
	failed := false
	for _, rate := range cells {
		cell := "burst"
		if rate > 0 {
			cell = fmt.Sprintf("rate_%g", rate)
		}
		if *smoke {
			cell = "smoke"
		}
		s := serve.New(cfg)
		rep := serve.RunLoad(s, serve.LoadOptions{
			Requests: *requests,
			Rate:     rate,
			Seed:     *seed,
			Kernel:   *kernel,
			Variant:  *variant,
			Deadline: *deadline,
		})
		st := s.Stats()
		s.Close()
		rep.Publish(reg, cell, *smoke)
		fmt.Printf("%-10s  %8d  %9d  %8d  %8d  %9d  %11.0f  %9.0f  %9.0f  %5d\n",
			cell, rep.Offered, rep.Completed, rep.Degraded, rep.Rejected, rep.Cancelled,
			rep.GoodputRPS, float64(rep.P50NS)/1e3, float64(rep.P99NS)/1e3, rep.MaxBatch)

		// Conservation is the contract: assert it on every cell, three ways.
		if rep.Lost != 0 {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: CONSERVATION VIOLATED: %d request(s) lost\n", cell, rep.Lost)
			failed = true
		}
		if st.Lost() != 0 {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: server accounting leaks: %+v\n", cell, st)
			failed = true
		}
		if st.Completed != rep.Completed || st.Degraded != rep.Degraded ||
			st.Rejected != rep.Rejected || st.Cancelled != rep.Cancelled {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: server stats %+v disagree with ticket tallies %d/%d/%d/%d\n",
				cell, st, rep.Completed, rep.Degraded, rep.Rejected, rep.Cancelled)
			failed = true
		}
		if st.QueueHighWater > cfg.QueueLimit {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: queue high-water %d exceeds bound %d\n", cell, st.QueueHighWater, cfg.QueueLimit)
			failed = true
		}
		if *smoke && rep.Completed != rep.Offered {
			fmt.Fprintf(os.Stderr, "davinci-serve: smoke: %d of %d requests did not complete\n", rep.Offered-rep.Completed, rep.Offered)
			failed = true
		}
		if !*smoke && rep.Completed+rep.Degraded == 0 {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: goodput zero — nothing completed or degraded\n", cell)
			failed = true
		}
		if st.BreakerTrips > 0 || st.BreakerProbes > 0 {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: breaker trips %d, half-open probes %d\n", cell, st.BreakerTrips, st.BreakerProbes)
		}
		if tracer != nil && tracer.Active() != 0 {
			fmt.Fprintf(os.Stderr, "davinci-serve: %s: span leak: %d active after drain\n", cell, tracer.Active())
			failed = true
		}
	}

	if *metrics != "" {
		if err := writeMetrics(*metrics, reg); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-serve: %v\n", err)
			os.Exit(1)
		}
	}
	if *spans != "" {
		if err := writeSpans(*spans, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-serve: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
	if *smoke {
		fmt.Println("smoke: conservation holds, all requests completed")
	}
	if *serveAddr != "" {
		fmt.Fprintf(os.Stderr, "davinci-serve: load done; still serving on http://%s (interrupt to exit)\n", *serveAddr)
		select {}
	}
}

func writeMetrics(path string, reg *obs.Registry) error {
	s := reg.Snapshot()
	s.TakenUnixNanos = time.Now().UnixNano()
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSpans(path string, tracer *trace.Tracer) error {
	if path == "-" {
		return trace.WriteJSONL(os.Stdout, tracer.Finished())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, tracer.Finished()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
