// Command davinci-bench regenerates the tables and figures of the paper's
// evaluation (§VI) on the simulated device and prints them as text tables.
//
// Usage:
//
//	davinci-bench [flags] [experiment ...]
//
// Experiments: table1, fig7a, fig7b, fig7c, fig8a, fig8b, fig8c, avgpool,
// perf, sweep, optsweep, autosched, certsweep, serveload, all
// (default: all). "serveload" drives the internal/serve fleet with an
// open-loop load generator over the Table I shape mix and reports the
// per-rate outcome profile (the deterministic smoke cell feeds the
// serve_goodput / serve_lost_requests trend gates).
// "sweep" runs every built-in kernel on every Table I layer on a traced
// core, checking the cycle-accounting identity per program; "optsweep"
// compiles the same programs baseline vs the static optimizer
// (internal/opt) and fails if any translation-validated program got
// slower — the CI opt regression gate. "autosched" compiles the same
// programs with the schedule search (internal/sched) and fails if a
// searched schedule regresses on any program — the autoscheduler
// regression gate. "certsweep" proves the symbolic certificate registry
// (internal/lint/sym) and compiles the certified kernels strict with and
// without certificate admission, gating on cert hits, reduced compile
// allocations and a divergence-free cross-check. -opt N compiles every
// other experiment's plans at that optimizer level. With -metrics FILE,
// every measured cell plus the chip, plan-cache, opt_rewrites, sched_*
// and cert_* counters are dumped as a JSON snapshot (the CI
// BENCH_<rev>.json artifact).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"davinci/internal/bench"
	"davinci/internal/buffer"
	"davinci/internal/chip"
	"davinci/internal/faults"
	"davinci/internal/obs"
	"davinci/internal/opt"
	"davinci/internal/trace"
)

func main() {
	// "trend" is a subcommand with its own flag set: it compares metric
	// snapshots instead of running experiments.
	if len(os.Args) > 1 && os.Args[1] == "trend" {
		os.Exit(trendMain(os.Args[2:]))
	}
	cores := flag.Int("cores", chip.DefaultCores, "AI cores on the simulated device")
	ub := flag.Int("ub", buffer.DefaultUBSize, "Unified Buffer bytes per core")
	l1 := flag.Int("l1", buffer.DefaultL1Size, "L1 buffer bytes per core")
	seed := flag.Int64("seed", 1, "workload generator seed")
	reps := flag.Int("reps", 1, "repetitions per measurement (verifies determinism)")
	serialize := flag.Bool("serialize", false, "disable intra-core pipeline overlap (ablation)")
	optLevel := flag.Int("opt", 0, "static optimizer level for compiled plans (0=off, 1=rewrites, 2=+rescheduling)")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot (cells, chip and plan-cache counters) to this file; - for stdout")
	chaos := flag.Bool("chaos", false, "inject seeded faults and run every experiment through the resilient tile executor")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed (same seed = same faults, any goroutine schedule)")
	chaosRate := flag.Float64("chaos-rate", 0.05, "per-(tile,attempt) fault probability")
	chaosKinds := flag.String("chaos-kinds", "transient,bitflip,droppedflag,stuckpipe", "comma-separated fault kinds to draw from")
	chaosAttempts := flag.Int("chaos-attempts", 3, "attempts per tile before giving up (retry on a fresh core, requeue elsewhere)")
	chaosWatchdog := flag.Duration("chaos-watchdog", time.Second, "wall-clock budget per tile attempt before the watchdog reclaims the core")
	chaosDegrade := flag.Bool("chaos-degrade", false, "fall back to the host golden model for tiles that exhaust their retries")
	spans := flag.String("spans", "", "write the run's trace spans as JSONL to this file; - for stdout")
	serve := flag.String("serve", "", "serve live telemetry (Prometheus /metrics, /debug/spans) on this address until the experiments finish, then keep serving until interrupted")
	flag.Parse()

	opts := bench.Options{
		Chip: chip.Config{
			Cores:     *cores,
			Buffers:   buffer.Config{UBSize: *ub, L1Size: *l1},
			Serialize: *serialize,
			Opt:       opt.Level(*optLevel),
		},
		Seed: *seed,
		Reps: *reps,
	}
	if *metrics != "" || *chaos || *serve != "" {
		opts.Metrics = obs.NewRegistry()
	}
	var tracer *trace.Tracer
	if *spans != "" || *serve != "" {
		tracer = trace.New()
		opts.Trace = tracer.Root()
	}
	if *serve != "" {
		exporter := &obs.Exporter{Registry: opts.Metrics, Tracer: tracer}
		srv := &http.Server{Addr: *serve, Handler: exporter.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "davinci-bench: -serve: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "davinci-bench: serving telemetry on http://%s/metrics and /debug/spans\n", *serve)
	}
	if *chaos {
		kinds, err := faults.ParseKinds(*chaosKinds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "davinci-bench: -chaos-kinds: %v\n", err)
			os.Exit(1)
		}
		opts.Chip.Resilience = chip.Resilience{
			Enabled: true,
			Injector: faults.New(faults.Config{
				Seed:  *chaosSeed,
				Rate:  *chaosRate,
				Kinds: kinds,
			}, opts.Metrics),
			MaxAttempts: *chaosAttempts,
			Watchdog:    *chaosWatchdog,
			Degrade:     *chaosDegrade,
		}
	}

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	for _, exp := range experiments {
		if err := runTraced(exp, opts, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-bench: %s: %v\n", exp, err)
			os.Exit(1)
		}
	}
	if *chaos {
		printChaosSummary(os.Stdout, opts.Metrics.Snapshot())
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, opts.Metrics.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *spans != "" {
		if err := writeSpans(*spans, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *serve != "" {
		fmt.Fprintf(os.Stderr, "davinci-bench: experiments done; still serving on http://%s (interrupt to exit)\n", *serve)
		select {}
	}
}

// runTraced wraps one experiment in a bench_experiment span, so every
// chip_run (and below it every compile and tile) the experiment causes
// nests under one root per experiment.
func runTraced(exp string, opts bench.Options, csv bool) error {
	es := opts.Trace.StartSpan("bench_experiment", "experiment", exp)
	if es != nil {
		opts.Trace = es.Ctx()
	}
	err := run(exp, opts, csv)
	if es != nil {
		if err != nil {
			es.SetAttr("outcome", "error")
		} else {
			es.SetAttr("outcome", "ok")
		}
		es.End()
	}
	return err
}

// writeSpans dumps the tracer's finished spans as deterministic JSONL.
func writeSpans(path string, tracer *trace.Tracer) error {
	if path == "-" {
		return trace.WriteJSONL(os.Stdout, tracer.Finished())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, tracer.Finished()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// trendMain is the "davinci-bench trend" subcommand: the bench-trend
// regression gate over -metrics snapshots.
func trendMain(args []string) int {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	dir := fs.String("dir", "", "directory of BENCH_*.json snapshots, compared consecutively oldest to newest (by embedded taken_unix_nanos when all carry one, else file modification time)")
	baseline := fs.String("baseline", "", "baseline snapshot prepended before -dir files and positional files")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: davinci-bench trend [-baseline FILE] [-dir DIR] [snapshot.json ...]")
		fmt.Fprintln(os.Stderr, "compares consecutive snapshot pairs under the default gates; exits 1 on any regression")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	var paths []string
	if *baseline != "" {
		paths = append(paths, *baseline)
	}
	if *dir != "" {
		fromDir, err := bench.TrendDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "davinci-bench: trend: %v\n", err)
			return 1
		}
		paths = append(paths, fromDir...)
	}
	paths = append(paths, fs.Args()...)
	reports, err := bench.TrendFiles(paths, bench.DefaultTrendGates())
	if err != nil {
		fmt.Fprintf(os.Stderr, "davinci-bench: trend: %v\n", err)
		return 1
	}
	failed := false
	for _, r := range reports {
		r.Format(os.Stdout)
		if r.Failed() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "davinci-bench: trend: regression detected")
		return 1
	}
	fmt.Printf("trend: %d comparison(s), no regressions\n", len(reports))
	return 0
}

// printChaosSummary reports what the fault injector did and how the
// resilient executor absorbed it, from the run's shared metrics registry.
func printChaosSummary(w *os.File, s *obs.Snapshot) {
	fmt.Fprintln(w, "chaos summary")
	for _, k := range faults.AllKinds() {
		if v, ok := s.CounterValue("faults_injected", "kind", k.String()); ok && v > 0 {
			fmt.Fprintf(w, "  faults injected (%s): %d\n", k, v)
		}
	}
	for _, c := range []struct{ name, what string }{
		{"chip_tile_retries", "tile retries"},
		{"chip_tile_requeues", "tile requeues onto other cores"},
		{"chip_watchdog_trips", "watchdog trips (hung attempts reclaimed)"},
		{"chip_cores_failed", "cores excluded after repeated failures"},
		{"chip_tile_panics", "worker panics recovered"},
		{"chip_tiles_degraded", "tiles degraded to the host golden model"},
		{"chip_retry_backoff_cycles", "simulated backoff cycles charged"},
	} {
		if v, ok := s.CounterValue(c.name); ok && v > 0 {
			fmt.Fprintf(w, "  %s: %d\n", c.what, v)
		}
	}
	fmt.Fprintln(w)
}

func writeMetrics(path string, s *obs.Snapshot) error {
	// Stamp the capture time so "trend -dir" can order artifacts by when
	// they were taken rather than by file modtime, which CI downloads and
	// checkouts rewrite.
	s.TakenUnixNanos = time.Now().UnixNano()
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp string, opts bench.Options, csv bool) error {
	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		if csv {
			t.FormatCSV(os.Stdout)
		} else {
			t.Format(os.Stdout)
		}
		return nil
	}
	switch exp {
	case "table1":
		return emit(bench.Table1(), nil)
	case "fig7a":
		return emit(bench.Fig7a(opts))
	case "fig7b":
		return emit(bench.Fig7b(opts))
	case "fig7c":
		return emit(bench.Fig7c(opts))
	case "fig8a":
		return emit(bench.Fig8(1, opts))
	case "fig8b":
		return emit(bench.Fig8(2, opts))
	case "fig8c":
		return emit(bench.Fig8(3, opts))
	case "avgpool":
		return emit(bench.AvgPool(opts))
	case "perf":
		return emit(bench.PerfTable(opts))
	case "sweep":
		return emit(bench.TableISweep(opts))
	case "optsweep":
		return emit(bench.OptSweep(opts))
	case "autosched":
		return emit(bench.AutoschedSweep(opts))
	case "certsweep":
		return emit(bench.CertSweep(opts))
	case "serveload":
		return emit(bench.ServeLoad(opts))
	case "all":
		tables, err := bench.All(opts)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if csv {
				t.FormatCSV(os.Stdout)
			} else {
				t.Format(os.Stdout)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment (want table1, fig7a..c, fig8a..c, avgpool, perf, sweep, optsweep, autosched, certsweep, serveload, all)")
	}
}
