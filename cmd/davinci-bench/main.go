// Command davinci-bench regenerates the tables and figures of the paper's
// evaluation (§VI) on the simulated device and prints them as text tables.
//
// Usage:
//
//	davinci-bench [flags] [experiment ...]
//
// Experiments: table1, fig7a, fig7b, fig7c, fig8a, fig8b, fig8c, avgpool,
// perf, all (default: all).
package main

import (
	"flag"
	"fmt"
	"os"

	"davinci/internal/bench"
	"davinci/internal/buffer"
	"davinci/internal/chip"
)

func main() {
	cores := flag.Int("cores", chip.DefaultCores, "AI cores on the simulated device")
	ub := flag.Int("ub", buffer.DefaultUBSize, "Unified Buffer bytes per core")
	l1 := flag.Int("l1", buffer.DefaultL1Size, "L1 buffer bytes per core")
	seed := flag.Int64("seed", 1, "workload generator seed")
	reps := flag.Int("reps", 1, "repetitions per measurement (verifies determinism)")
	serialize := flag.Bool("serialize", false, "disable intra-core pipeline overlap (ablation)")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	flag.Parse()

	opts := bench.Options{
		Chip: chip.Config{
			Cores:     *cores,
			Buffers:   buffer.Config{UBSize: *ub, L1Size: *l1},
			Serialize: *serialize,
		},
		Seed: *seed,
		Reps: *reps,
	}

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	for _, exp := range experiments {
		if err := run(exp, opts, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-bench: %s: %v\n", exp, err)
			os.Exit(1)
		}
	}
}

func run(exp string, opts bench.Options, csv bool) error {
	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		if csv {
			t.FormatCSV(os.Stdout)
		} else {
			t.Format(os.Stdout)
		}
		return nil
	}
	switch exp {
	case "table1":
		return emit(bench.Table1(), nil)
	case "fig7a":
		return emit(bench.Fig7a(opts))
	case "fig7b":
		return emit(bench.Fig7b(opts))
	case "fig7c":
		return emit(bench.Fig7c(opts))
	case "fig8a":
		return emit(bench.Fig8(1, opts))
	case "fig8b":
		return emit(bench.Fig8(2, opts))
	case "fig8c":
		return emit(bench.Fig8(3, opts))
	case "avgpool":
		return emit(bench.AvgPool(opts))
	case "perf":
		return emit(bench.PerfTable(opts))
	case "all":
		tables, err := bench.All(opts)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if csv {
				t.FormatCSV(os.Stdout)
			} else {
				t.Format(os.Stdout)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment (want table1, fig7a..c, fig8a..c, avgpool, perf, all)")
	}
}
