package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestBrokenFixtureGolden locks the diagnostic table for the planted
// missing-wait_flag + out-of-bounds fixture: exact output, exact exit
// status. `go test ./cmd/davinci-lint -update` refreshes the golden file.
func TestBrokenFixtureGolden(t *testing.T) {
	var buf bytes.Buffer
	if status := run([]string{"-fixture", "broken"}, &buf); status != 1 {
		t.Fatalf("run(-fixture broken) status = %d, want 1", status)
	}
	golden := filepath.Join("testdata", "broken.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestUnknownFixture: unknown fixture names are a usage error.
func TestUnknownFixture(t *testing.T) {
	var buf bytes.Buffer
	if status := run([]string{"-fixture", "nope"}, &buf); status != 2 {
		t.Fatalf("status = %d, want 2", status)
	}
}

// TestKernelsClean is the CLI-level acceptance criterion: the default
// sweep over the Fig. 7 layers reports zero diagnostics and exits 0.
func TestKernelsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel sweep")
	}
	var buf bytes.Buffer
	if status := run(nil, &buf); status != 0 {
		t.Fatalf("run() status = %d, want 0; output:\n%s", status, buf.Bytes())
	}
	if bytes.Contains(buf.Bytes(), []byte("FAIL")) {
		t.Errorf("clean sweep printed FAIL rows:\n%s", buf.Bytes())
	}
}
