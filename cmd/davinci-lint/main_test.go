package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestBrokenFixtureGolden locks the diagnostic table for the planted
// missing-wait_flag + out-of-bounds fixture: exact output, exact exit
// status. `go test ./cmd/davinci-lint -update` refreshes the golden file.
func TestBrokenFixtureGolden(t *testing.T) {
	var buf bytes.Buffer
	if status := run([]string{"-fixture", "broken"}, &buf); status != 1 {
		t.Fatalf("run(-fixture broken) status = %d, want 1", status)
	}
	golden := filepath.Join("testdata", "broken.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestUnknownFixture: unknown fixture names are a usage error.
func TestUnknownFixture(t *testing.T) {
	var buf bytes.Buffer
	if status := run([]string{"-fixture", "nope"}, &buf); status != 2 {
		t.Fatalf("status = %d, want 2", status)
	}
}

// TestKernelsClean is the CLI-level acceptance criterion: the default
// sweep over the Fig. 7 layers reports zero diagnostics and exits 0.
func TestKernelsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel sweep")
	}
	var buf bytes.Buffer
	if status := run(nil, &buf); status != 0 {
		t.Fatalf("run() status = %d, want 0; output:\n%s", status, buf.Bytes())
	}
	if bytes.Contains(buf.Bytes(), []byte("FAIL")) {
		t.Errorf("clean sweep printed FAIL rows:\n%s", buf.Bytes())
	}
}

// checkGolden locks one invocation's full output and exit status. The
// comparison is byte-exact, so it also pins the deterministic ordering
// of rows and diagnostics; `go test ./cmd/davinci-lint -update`
// refreshes the files.
func checkGolden(t *testing.T, args []string, wantStatus int, name string) {
	t.Helper()
	var buf bytes.Buffer
	if status := run(args, &buf); status != wantStatus {
		t.Fatalf("run(%v) status = %d, want %d; output:\n%s", args, status, wantStatus, buf.Bytes())
	}
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from %s:\n got:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestDefaultGolden pins the default correctness sweep (Fig. 7 layers,
// Plan API): row order, program names, instruction counts.
func TestDefaultGolden(t *testing.T) {
	checkGolden(t, nil, 0, "default.golden")
}

// TestPerfGolden pins the -perf report: the static bounds and the
// expected advisory warnings (the standard lowerings' sub-50% lane
// occupancy and coalescable repeat=1 runs are the paper's motivation,
// reported but not fatal).
func TestPerfGolden(t *testing.T) {
	checkGolden(t, []string{"-perf"}, 0, "perf.golden")
}

// TestPerfJSON checks the machine-readable form: valid JSON, one row
// per analyzed plan, bounds ordered, occupancy within [0,1].
func TestPerfJSON(t *testing.T) {
	var buf bytes.Buffer
	if status := run([]string{"-perf", "-json"}, &buf); status != 0 {
		t.Fatalf("run(-perf -json) status = %d; output:\n%s", status, buf.Bytes())
	}
	var rows []struct {
		Kernel  string `json:"kernel"`
		Program string `json:"program"`
		Report  struct {
			Instrs    int   `json:"Instrs"`
			CritPath  int64 `json:"CritPath"`
			BusyBound int64 `json:"BusyBound"`
			Vector    struct {
				MeanOccupancy float64
			}
		} `json:"report"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Kernel == "" || r.Program == "" || r.Report.Instrs == 0 {
			t.Errorf("incomplete row: %+v", r)
		}
		if r.Report.BusyBound > r.Report.CritPath {
			t.Errorf("%s: busy bound %d exceeds critical path %d", r.Kernel, r.Report.BusyBound, r.Report.CritPath)
		}
		if o := r.Report.Vector.MeanOccupancy; o < 0 || o > 1 {
			t.Errorf("%s: occupancy %v out of range", r.Kernel, o)
		}
	}
}
