// Command davinci-lint runs the static kernel verifier (internal/lint)
// over the instruction streams the built-in pooling kernels emit, and
// prints a per-program diagnostic table. Each kernel runs once per layer
// configuration with a program-capture hook installed; every captured
// program is linted twice — raw under the implicit-sync contract, and
// after cce.AutoSync under full explicit-sync semantics (bounds, sync
// protocol, cross-pipe hazards, ISA invariants).
//
// Exit status is 1 when any diagnostic is reported, so the command works
// as a CI gate.
//
// Example:
//
//	davinci-lint                # Fig. 7 InceptionV3 layers
//	davinci-lint -all           # every Table I layer (im2col-family only)
//	davinci-lint -fixture broken  # demo diagnostics on a broken program
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/ops"
	"davinci/internal/ref"
	"davinci/internal/tensor"
	"davinci/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("davinci-lint", flag.ContinueOnError)
	fs.SetOutput(out)
	all := fs.Bool("all", false, "lint every Table I layer (default: the three Fig. 7 InceptionV3 layers)")
	fixture := fs.String("fixture", "", "lint a named broken fixture instead of the kernels (available: broken)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *fixture {
	case "":
		return lintKernels(out, *all)
	case "broken":
		return lintPrograms(out, "fixture/broken", brokenFixture(), lint.Check)
	default:
		fmt.Fprintf(out, "unknown fixture %q\n", *fixture)
		return 2
	}
}

// lintKernels captures and lints the programs of every built-in pooling
// kernel. The direct (standard/expansion/xysplit) lowerings emit one
// instruction per pooling window and the analysis is quadratic, so they
// only run on the smallest layer; the im2col/col2im family stays compact
// at every production shape and runs on all selected layers.
func lintKernels(out io.Writer, all bool) int {
	layers := workloads.InceptionV3Fig7()
	if all {
		layers = workloads.TableI
	}
	status := 0
	fmt.Fprintf(out, "%-28s %-30s %7s %6s %s\n", "KERNEL", "PROGRAM", "INSTRS", "DIAGS", "STATUS")
	for _, l := range layers {
		p := l.Params()
		in := randTile(int64(l.H*10+l.W), p)
		mask := ref.ArgmaxMask(in, p)
		oh, ow := p.OutDims()
		grad := tensor.New(1, 1, oh, ow, tensor.C0)
		grad.FillRandom(rand.New(rand.NewSource(int64(l.H))), 4)
		layer := fmt.Sprintf("%s/%d", l.Network, l.Index)

		type job struct {
			name string
			emit func(*aicore.Core) error
		}
		jobs := []job{
			{"maxpool-fwd/im2col", func(c *aicore.Core) error {
				_, _, err := ops.MaxPoolFwdIm2col(c, in, p)
				return err
			}},
			{"maxpool-argmax/im2col", func(c *aicore.Core) error {
				_, _, _, err := ops.MaxPoolFwdArgmaxIm2col(c, in, p)
				return err
			}},
			{"maxpool-bwd/col2im", func(c *aicore.Core) error {
				_, _, err := ops.MaxPoolBwdCol2im(c, mask, grad, p)
				return err
			}},
			{"avgpool-fwd/im2col", func(c *aicore.Core) error {
				_, _, err := ops.AvgPoolFwdIm2col(c, in, p)
				return err
			}},
			{"avgpool-bwd/col2im", func(c *aicore.Core) error {
				_, _, err := ops.AvgPoolBackward(c, grad, p, true)
				return err
			}},
		}
		// Direct lowerings: quadratic program sizes, smallest layer only.
		if smallest(layers, l) {
			jobs = append(jobs,
				job{"maxpool-fwd/standard", func(c *aicore.Core) error {
					_, _, err := ops.MaxPoolFwdStandard(c, in, p)
					return err
				}},
				job{"maxpool-fwd/expansion", func(c *aicore.Core) error {
					_, _, err := ops.MaxPoolFwdExpansion(c, in, p)
					return err
				}},
				job{"maxpool-fwd/xysplit", func(c *aicore.Core) error {
					_, _, err := ops.MaxPoolFwdXYSplit(c, in, p)
					return err
				}},
				job{"avgpool-fwd/standard", func(c *aicore.Core) error {
					_, _, err := ops.AvgPoolFwdStandard(c, in, p)
					return err
				}},
			)
		}
		for _, j := range jobs {
			core := aicore.New(buffer.Config{}, nil)
			var progs []*cce.Program
			core.OnProgram = func(pr *cce.Program) { progs = append(progs, pr) }
			if err := j.emit(core); err != nil {
				fmt.Fprintf(out, "%-28s %v\n", j.name+"@"+layer, err)
				status = 1
				continue
			}
			for _, prog := range progs {
				n := report(out, j.name+"@"+layer, prog, lint.CheckImplicit(prog))
				synced := cce.AutoSync(prog)
				n += report(out, j.name+"@"+layer, synced, lint.Check(synced))
				if n > 0 {
					status = 1
				}
			}
		}
	}
	return status
}

func smallest(layers []workloads.CNNLayer, l workloads.CNNLayer) bool {
	best := layers[0]
	for _, c := range layers {
		if c.H*c.W < best.H*best.W {
			best = c
		}
	}
	return l == best
}

func lintPrograms(out io.Writer, label string, progs []*cce.Program, check func(*cce.Program) []lint.Diagnostic) int {
	status := 0
	fmt.Fprintf(out, "%-28s %-30s %7s %6s %s\n", "KERNEL", "PROGRAM", "INSTRS", "DIAGS", "STATUS")
	for _, prog := range progs {
		if report(out, label, prog, check(prog)) > 0 {
			status = 1
		}
	}
	return status
}

// report prints one table row plus any diagnostics, returning the count.
func report(out io.Writer, kernel string, prog *cce.Program, diags []lint.Diagnostic) int {
	verdict := "ok"
	if len(diags) > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(out, "%-28s %-30s %7d %6d %s\n", kernel, prog.Name, prog.Len(), len(diags), verdict)
	for _, d := range diags {
		fmt.Fprintf(out, "    %s\n", d)
	}
	return len(diags)
}

func randTile(seed int64, p isa.ConvParams) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(1, 1, p.Ih, p.Iw, tensor.C0)
	in.FillRandom(rng, 8)
	return in
}

// brokenFixture builds a small producer/consumer program with two planted
// bugs — a missing wait_flag (the set fires but nothing consumes it, and
// the vector read races the load) and a copy displaced past the Unified
// Buffer capacity — to demonstrate the diagnostic output.
func brokenFixture() []*cce.Program {
	prog := cce.New("broken_producer_consumer")
	// MTE2 load, set_flag... but the consumer's wait_flag was "forgotten".
	prog.EmitCopy(isa.GM, 0, isa.UB, 0, 4096)
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	prog.EmitVec(isa.VMuls, isa.Contig(isa.UB, 4096), isa.Contig(isa.UB, 0), isa.Operand{},
		0x4000, isa.FullMask(), 16)
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.EmitCopy(isa.UB, 4096, isa.GM, 65536, 4096)
	// The result store that lands 48 bytes past the end of the UB.
	prog.EmitCopy(isa.GM, 131072, isa.UB, buffer.DefaultUBSize-16, 64)
	prog.EmitCopy(isa.UB, buffer.DefaultUBSize-16, isa.GM, 131072, 16)
	return []*cce.Program{prog}
}
