// Command davinci-lint runs the static analyses (internal/lint and
// internal/lint/perf) over the built-in kernels and prints per-program
// tables. Kernels are compiled once per layer configuration through the
// ops Plan API — no inputs and no simulation are needed; the cached
// instruction stream (Plan.Prog) is the analysis subject.
//
// In the default (correctness) mode every plan is linted twice — raw
// under the implicit-sync contract, and after cce.AutoSync under full
// explicit-sync semantics (bounds, sync protocol, cross-pipe hazards,
// ISA invariants) — and any diagnostic sets exit status 1, so the
// command works as a CI gate.
//
// With -perf the command prints the static performance report instead:
// critical-path and occupancy cycle bounds, mean vector lane occupancy,
// sync-induced stalls, and the perf diagnostics (coalescable repeat=1
// runs, low lane occupancy, serializing set/wait pairs, dead barriers).
// Perf warnings are advisory; only error-severity perf diagnostics (the
// analyzer's internal self-checks) set exit status 1.
//
// With -opt N every kernel is compiled twice — baseline and through the
// static optimizer (internal/opt) at that level — and the rewrite report
// is printed: instruction and cycle deltas plus how many of the perf
// diagnostics the optimizer targets (coalescable runs, serializing
// set/wait pairs, dead barriers) were discharged. A rejected
// optimization, a slower optimized program, or a surviving targeted
// diagnostic sets exit status 1, so the mode doubles as a CI gate.
//
// Example:
//
//	davinci-lint                  # Fig. 7 InceptionV3 layers
//	davinci-lint -all             # every Table I layer
//	davinci-lint -perf            # static performance report + lint
//	davinci-lint -perf -json      # the same, machine-readable
//	davinci-lint -opt 2 -all      # optimizer rewrite report, every layer
//	davinci-lint -fixture broken  # demo diagnostics on a broken program
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"davinci/internal/buffer"
	"davinci/internal/cce"
	"davinci/internal/isa"
	"davinci/internal/lint"
	"davinci/internal/lint/perf"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("davinci-lint", flag.ContinueOnError)
	fs.SetOutput(out)
	all := fs.Bool("all", false, "lint every Table I layer (default: the three Fig. 7 InceptionV3 layers)")
	perfMode := fs.Bool("perf", false, "print the static performance report (bounds, occupancy, stalls) instead of the correctness lint")
	jsonOut := fs.Bool("json", false, "with -perf, emit the reports as JSON")
	optLevel := fs.Int("opt", 0, "compile through the static optimizer at this level and print the rewrite report (before/after cycles and targeted diagnostics)")
	fixture := fs.String("fixture", "", "lint a named broken fixture instead of the kernels (available: broken)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *fixture {
	case "":
		if *optLevel > 0 {
			return optKernels(out, *all, opt.Level(*optLevel))
		}
		if *perfMode {
			return perfKernels(out, *all, *jsonOut)
		}
		return lintKernels(out, *all)
	case "broken":
		return lintPrograms(out, "fixture/broken", brokenFixture(), lint.Check)
	default:
		fmt.Fprintf(out, "unknown fixture %q\n", *fixture)
		return 2
	}
}

// kernel is one built-in plan constructor. Direct lowerings
// (standard/expansion/xysplit) emit one instruction per pooling window
// and the hazard analysis is quadratic, so they only run on the smallest
// selected layer; the im2col/col2im/cube family stays compact at every
// production shape and runs on all of them.
type kernel struct {
	name   string
	direct bool
	plan   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error)
}

// convCh is the logical channel extent the convolution kernels are
// compiled for: one C0 slice, matching the single-tile pooling programs.
const convCh = 16

func builtinKernels() []kernel {
	var ks []kernel
	forVariant := func(name string, fn func(string, ops.Spec, isa.ConvParams) (*ops.Plan, error), variants ...string) {
		for _, v := range variants {
			variant := v
			ks = append(ks, kernel{
				name:   name + "/" + variant,
				direct: variant == "standard" || variant == "expansion" || variant == "xysplit",
				plan:   func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) { return fn(variant, spec, p) },
			})
		}
	}
	forVariant("maxpool-fwd", ops.PlanMaxPoolForward, "standard", "im2col", "expansion", "xysplit")
	forVariant("maxpool-argmax", ops.PlanMaxPoolForwardArgmax, "standard", "im2col")
	forVariant("maxpool-bwd", ops.PlanMaxPoolBackward, "standard", "col2im")
	forVariant("avgpool-fwd", ops.PlanAvgPoolForward, "standard", "im2col", "cube")
	for _, useCol2im := range []bool{false, true} {
		use := useCol2im
		name, direct := "avgpool-bwd/standard", true
		if use {
			name, direct = "avgpool-bwd/col2im", false
		}
		ks = append(ks, kernel{name, direct, func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanAvgPoolBackward(spec, p, use)
		}})
	}
	ks = append(ks,
		kernel{"conv2d/im2col-cube", false, func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanConv2D(spec, p, convCh, convCh)
		}},
		kernel{"conv2d-bwd-data/col2im", false, func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanConv2DBackwardData(spec, p, convCh, convCh)
		}},
		kernel{"conv2d-bwd-weights/cube", false, func(spec ops.Spec, p isa.ConvParams) (*ops.Plan, error) {
			return ops.PlanConv2DBackwardWeights(spec, p, convCh, convCh)
		}},
	)
	return ks
}

// sweep compiles every applicable kernel for every selected layer and
// hands each plan to visit. Shapes a kernel cannot schedule (the tile
// exceeds a scratch-pad) are reported to skip, like the chip-level
// tiling would skip them.
func sweep(all bool, visit func(label string, pl *ops.Plan), skip func(label string, err error) bool) bool {
	layers := workloads.InceptionV3Fig7()
	if all {
		layers = workloads.TableI
	}
	ok := true
	spec := ops.Spec{}
	for _, l := range layers {
		p := l.Params()
		for _, k := range builtinKernels() {
			if k.direct && !smallest(layers, l) {
				continue
			}
			label := fmt.Sprintf("%s@%s/%d", k.name, l.Network, l.Index)
			pl, err := k.plan(spec, p)
			if err != nil {
				if !skip(label, err) {
					ok = false
				}
				continue
			}
			visit(label, pl)
		}
	}
	return ok
}

// unschedulable reports whether a compile error means "this tile does
// not fit on one core at this shape" — a skip, not a failure.
func unschedulable(err error) bool {
	for _, s := range []string{"does not fit", "exceed", "out of space"} {
		if strings.Contains(err.Error(), s) {
			return true
		}
	}
	return false
}

// lintKernels is the correctness gate: every plan's program is linted
// raw (implicit-sync contract) and after AutoSync (explicit semantics).
func lintKernels(out io.Writer, all bool) int {
	status := 0
	fmt.Fprintf(out, "%-38s %-30s %7s %6s %s\n", "KERNEL", "PROGRAM", "INSTRS", "DIAGS", "STATUS")
	ok := sweep(all,
		func(label string, pl *ops.Plan) {
			n := report(out, label, pl.Prog, lint.CheckImplicit(pl.Prog))
			synced := cce.AutoSync(pl.Prog)
			n += report(out, label, synced, lint.Check(synced))
			if n > 0 {
				status = 1
			}
		},
		func(label string, err error) bool {
			if unschedulable(err) {
				fmt.Fprintf(out, "%-38s %-30s %7s %6s skip (%v)\n", label, "-", "-", "-", err)
				return true
			}
			fmt.Fprintf(out, "%-38s %v\n", label, err)
			return false
		})
	if !ok {
		status = 1
	}
	return status
}

// perfRow is one plan's entry in the -perf -json output.
type perfRow struct {
	Kernel  string       `json:"kernel"`
	Program string       `json:"program"`
	Report  *perf.Report `json:"report"`
}

// perfKernels prints the static performance report per plan. Warnings
// are advisory (the standard lowerings' low lane occupancy is the
// paper's point, not a bug); only error-severity diagnostics — the
// analyzer's internal bound self-check — fail the gate.
func perfKernels(out io.Writer, all, jsonOut bool) int {
	status := 0
	var rows []perfRow
	if !jsonOut {
		fmt.Fprintf(out, "%-38s %7s %9s %9s %5s %5s %8s %6s\n",
			"KERNEL", "INSTRS", "CRITPATH", "BUSYBND", "PAR", "OCC%", "STALL", "DIAGS")
	}
	ok := sweep(all,
		func(label string, pl *ops.Plan) {
			r := pl.Perf
			if r == nil { // plans always carry one; belt and braces
				r = perf.Analyze(pl.Prog, perf.Options{Caps: buffer.Config{}.Capacities()})
			}
			if jsonOut {
				rows = append(rows, perfRow{Kernel: label, Program: pl.Prog.Name, Report: r})
			} else {
				fmt.Fprintf(out, "%-38s %7d %9d %9d %5.2f %4.0f%% %8d %6d\n",
					label, r.Instrs, r.CritPath, r.BusyBound, r.Parallelism(),
					100*r.Vector.MeanOccupancy, r.Sync.StallTotal, len(r.Diags))
				for _, d := range r.Diags {
					fmt.Fprintf(out, "    %s\n", d)
				}
			}
			if len(lint.Errors(r.Diags)) > 0 {
				status = 1
			}
		},
		func(label string, err error) bool {
			if unschedulable(err) {
				if !jsonOut {
					fmt.Fprintf(out, "%-38s skip (%v)\n", label, err)
				}
				return true
			}
			fmt.Fprintf(out, "%-38s %v\n", label, err)
			return false
		})
	if !ok {
		status = 1
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(out, "davinci-lint: %v\n", err)
			return 2
		}
	}
	return status
}

// targetedDiag reports whether a perf diagnostic is one the optimizer is
// expected to discharge: coalescable repeat=1 runs, serializing set/wait
// pairs, and dead barriers.
func targetedDiag(msg string) bool {
	return strings.Contains(msg, "fuse via the repeat parameter") ||
		strings.Contains(msg, "serialize with no overlapping work") ||
		strings.Contains(msg, "orders no cross-pipe dependent accesses")
}

// optKernels compiles every built-in kernel twice — baseline and through
// the static optimizer — and prints the rewrite report: instruction and
// cycle deltas, the translation-validation verdict, and how many of the
// perf diagnostics the optimizer targets were discharged. A rejected
// optimization, a slower optimized program, or a surviving targeted
// diagnostic fails the gate.
func optKernels(out io.Writer, all bool, level opt.Level) int {
	status := 0
	fmt.Fprintf(out, "%-38s %6s %6s %9s %9s %6s %5s %5s %s\n",
		"KERNEL", "INSTRS", ">OPT", "CYCLES", ">OPT", "SAVED%", "TDIAG", ">OPT", "VERDICT")
	layers := workloads.InceptionV3Fig7()
	if all {
		layers = workloads.TableI
	}
	for _, l := range layers {
		p := l.Params()
		for _, k := range builtinKernels() {
			if k.direct && !smallest(layers, l) {
				continue
			}
			label := fmt.Sprintf("%s@%s/%d", k.name, l.Network, l.Index)
			base, err := k.plan(ops.Spec{}, p)
			if err != nil {
				if unschedulable(err) {
					fmt.Fprintf(out, "%-38s skip (%v)\n", label, err)
					continue
				}
				fmt.Fprintf(out, "%-38s %v\n", label, err)
				status = 1
				continue
			}
			pl, err := k.plan(ops.Spec{Opt: level}, p)
			if err != nil {
				fmt.Fprintf(out, "%-38s optimizing compile: %v\n", label, err)
				status = 1
				continue
			}
			r := pl.Opt
			before, after := 0, 0
			for _, d := range base.Perf.Diags {
				if targetedDiag(d.Msg) {
					before++
				}
			}
			for _, d := range pl.Perf.Diags {
				if targetedDiag(d.Msg) {
					after++
				}
			}
			if r == nil {
				fmt.Fprintf(out, "%-38s optimizing spec produced no opt report\n", label)
				status = 1
				continue
			}
			verdict := "ok"
			switch {
			case r.Rejected != "":
				verdict, status = "REJECTED: "+r.Rejected, 1
			case r.Cycles > r.BaselineCycles:
				verdict, status = "SLOWER", 1
			case after > 0:
				verdict, status = "TARGETED DIAGS SURVIVE", 1
			}
			pct := float64(0)
			if r.BaselineCycles > 0 {
				pct = 100 * float64(r.Saved()) / float64(r.BaselineCycles)
			}
			fmt.Fprintf(out, "%-38s %6d %6d %9d %9d %5.1f%% %5d %5d %s\n",
				label, r.BaselineInstrs, r.Instrs, r.BaselineCycles, r.Cycles, pct, before, after, verdict)
			if r.SkippedReschedule != nil {
				fmt.Fprintf(out, "    note: rescheduling skipped (%v)\n", r.SkippedReschedule)
			}
		}
	}
	return status
}

func smallest(layers []workloads.CNNLayer, l workloads.CNNLayer) bool {
	best := layers[0]
	for _, c := range layers {
		if c.H*c.W < best.H*best.W {
			best = c
		}
	}
	return l == best
}

func lintPrograms(out io.Writer, label string, progs []*cce.Program, check func(*cce.Program) []lint.Diagnostic) int {
	status := 0
	fmt.Fprintf(out, "%-38s %-30s %7s %6s %s\n", "KERNEL", "PROGRAM", "INSTRS", "DIAGS", "STATUS")
	for _, prog := range progs {
		if report(out, label, prog, check(prog)) > 0 {
			status = 1
		}
	}
	return status
}

// report prints one table row plus any diagnostics, returning the count.
func report(out io.Writer, kernel string, prog *cce.Program, diags []lint.Diagnostic) int {
	verdict := "ok"
	if len(diags) > 0 {
		verdict = "FAIL"
	}
	fmt.Fprintf(out, "%-38s %-30s %7d %6d %s\n", kernel, prog.Name, prog.Len(), len(diags), verdict)
	for _, d := range diags {
		fmt.Fprintf(out, "    %s\n", d)
	}
	return len(diags)
}

// brokenFixture builds a small producer/consumer program with two planted
// bugs — a missing wait_flag (the set fires but nothing consumes it, and
// the vector read races the load) and a copy displaced past the Unified
// Buffer capacity — to demonstrate the diagnostic output.
func brokenFixture() []*cce.Program {
	prog := cce.New("broken_producer_consumer")
	// MTE2 load, set_flag... but the consumer's wait_flag was "forgotten".
	prog.EmitCopy(isa.GM, 0, isa.UB, 0, 4096)
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeMTE2, DstPipe: isa.PipeVector, Event: 0})
	prog.EmitVec(isa.VMuls, isa.Contig(isa.UB, 4096), isa.Contig(isa.UB, 0), isa.Operand{},
		0x4000, isa.FullMask(), 16)
	prog.Emit(&isa.SetFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.Emit(&isa.WaitFlagInstr{SrcPipe: isa.PipeVector, DstPipe: isa.PipeMTE3, Event: 0})
	prog.EmitCopy(isa.UB, 4096, isa.GM, 65536, 4096)
	// The result store that lands 48 bytes past the end of the UB.
	prog.EmitCopy(isa.GM, 131072, isa.UB, buffer.DefaultUBSize-16, 64)
	prog.EmitCopy(isa.UB, buffer.DefaultUBSize-16, isa.GM, 131072, 16)
	return []*cce.Program{prog}
}
