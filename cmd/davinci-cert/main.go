// Command davinci-cert drives the shape-generic certification layer
// (internal/lint/sym): it proves the pooling kernel lowerings lint-clean
// over the Table I parameter domains once per schedule pattern, prints
// the sealed certificates, explains failures with concrete
// counterexamples, and cross-checks certificate admission against the
// concrete verifier — the CI soundness gate.
//
// Usage:
//
//	davinci-cert prove [flags]            # build + print certificates, gate on violations
//	davinci-cert list [flags]             # print the certification catalogue (no proving)
//	davinci-cert explain-failure [flags]  # per failing cell: obligation, reason, counterexample
//	davinci-cert crosscheck [flags]       # certs vs concrete lint; any divergence fails
//
// "prove" exits 1 when any cell fails a proof obligation on a program
// that compiled (a genuine soundness finding), or when a kernel ends up
// admitting no shapes at all. Cells that fail because the kernel itself
// rejects the shape (capacity, invalid schedule) are fallbacks, not
// violations: compilation at those shapes re-runs concrete lint anyway.
//
// "crosscheck" re-compiles every sweep program (the full kernel
// catalogue across all Table I layers) plus -random N randomized
// in-domain shapes, asks the registry for its verdict on each, and exits
// 1 on any divergence — a shape the registry admits whose concrete
// program fails the verifier.
//
// Example:
//
//	davinci-cert prove -defaults          # default schedule patterns only
//	davinci-cert prove -kernel maxpool    # only the maxpool kernels
//	davinci-cert crosscheck -random 1000 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"davinci/internal/buffer"
	"davinci/internal/lint/sym"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	if len(args) == 0 {
		usage(out)
		return 2
	}
	cmd, args := args[0], args[1:]

	fs := flag.NewFlagSet("davinci-cert "+cmd, flag.ContinueOnError)
	fs.SetOutput(out)
	ub := fs.Int("ub", buffer.DefaultUBSize, "Unified Buffer bytes")
	l1 := fs.Int("l1", buffer.DefaultL1Size, "L1 buffer bytes")
	defaults := fs.Bool("defaults", false, "prove only each kernel's default schedule pattern")
	kernel := fs.String("kernel", "", "restrict to kernels containing this substring")
	random := fs.Int("random", 1000, "crosscheck: randomized in-domain probes")
	seed := fs.Int64("seed", 1, "crosscheck: probe generator seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := buffer.Config{UBSize: *ub, L1Size: *l1}
	kernels := selectKernels(*kernel)
	if len(kernels) == 0 {
		fmt.Fprintf(out, "davinci-cert: no certified kernel matches %q\n", *kernel)
		return 2
	}

	switch cmd {
	case "list":
		return list(out, kernels)
	case "prove":
		return prove(out, cfg, kernels, !*defaults)
	case "explain-failure":
		return explain(out, cfg, kernels, !*defaults)
	case "crosscheck":
		return crosscheck(out, cfg, kernels, !*defaults, *random, *seed)
	default:
		usage(out)
		return 2
	}
}

func usage(out io.Writer) {
	fmt.Fprintln(out, "usage: davinci-cert {prove|list|explain-failure|crosscheck} [flags]")
}

func selectKernels(substr string) []string {
	var out []string
	for _, k := range sym.Kernels() {
		if strings.Contains(k, substr) {
			out = append(out, k)
		}
	}
	return out
}

// list prints the certification catalogue — what prove would attempt —
// without running any proofs.
func list(out io.Writer, kernels []string) int {
	fmt.Fprintf(out, "%-28s %-34s %s\n", "KERNEL", "DOMAIN", "PATTERNS")
	for _, k := range kernels {
		variant := k
		if _, v, ok := strings.Cut(k, "/"); ok {
			variant = v
		}
		pats := sym.Patterns(variant)
		for _, d := range sym.DomainsFor(k) {
			fmt.Fprintf(out, "%-28s %-34s %d\n", k, d.String(), len(pats))
		}
	}
	return 0
}

// violated reports whether a certificate carries a genuine obligation
// violation: a cell whose counterexample program compiled but failed a
// proof obligation. Cells that fail because the kernel rejected the
// shape are excluded — those shapes fall back to concrete lint.
func violated(c *sym.Certificate) bool {
	if c.Inapplicable != "" {
		return false
	}
	for _, cl := range c.Cells {
		if !cl.Certified && cl.Obligation != "" {
			return true
		}
	}
	return false
}

func proveAll(cfg buffer.Config, kernels []string, allPatterns bool) []*sym.Certificate {
	if allPatterns {
		return sym.ProveKernels(cfg, kernels)
	}
	return sym.ProveKernelDefaults(cfg, kernels)
}

// prove builds every selected certificate, prints the sealed summaries,
// and gates: an obligation violation or a kernel admitting nothing
// exits 1.
func prove(out io.Writer, cfg buffer.Config, kernels []string, allPatterns bool) int {
	certs := proveAll(cfg, kernels, allPatterns)
	status := 0
	admitted := map[string]int{}
	for _, c := range certs {
		fmt.Fprintln(out, c.Summary())
		adm, _ := c.Coverage()
		admitted[c.Kernel] += adm
		if violated(c) {
			status = 1
		}
	}
	fmt.Fprintln(out)
	for _, k := range kernels {
		if admitted[k] == 0 {
			fmt.Fprintf(out, "davinci-cert: %s: no shape admitted by any certificate\n", k)
			status = 1
		}
	}
	if status != 0 {
		fmt.Fprintln(out, "davinci-cert: PROOF VIOLATIONS (see explain-failure)")
	} else {
		fmt.Fprintf(out, "davinci-cert: ok — %d certificates, no obligation violations\n", len(certs))
	}
	return status
}

// explain re-proves and prints, for every uncertified cell, the violated
// obligation, the prover's reason, and the smallest concrete
// counterexample the domain-boundary enumeration isolated.
func explain(out io.Writer, cfg buffer.Config, kernels []string, allPatterns bool) int {
	certs := proveAll(cfg, kernels, allPatterns)
	failures := 0
	for _, c := range certs {
		if c.Inapplicable != "" {
			fmt.Fprintf(out, "%s [%s] %s\n  inapplicable: %s\n", c.Kernel, c.Sched, c.Domain, c.Inapplicable)
			continue
		}
		if c.Certified() {
			continue
		}
		fmt.Fprintln(out, c.Summary())
		for _, cl := range c.Cells {
			if cl.Certified {
				continue
			}
			failures++
			ob := string(cl.Obligation)
			if ob == "" {
				ob = "(kernel rejected the shape; falls back to concrete lint)"
			}
			fmt.Fprintf(out, "  cell S=[%d,%d] mod %d = %d (%s):\n", cl.Lo, cl.Hi, cl.Step, cl.Residue, cl.Grade)
			fmt.Fprintf(out, "    obligation: %s\n", ob)
			fmt.Fprintf(out, "    reason:     %s\n", cl.Reason)
			if cl.Counterexample > 0 {
				fmt.Fprintf(out, "    counterexample: S=%d (smallest failing shape by boundary enumeration)\n", cl.Counterexample)
			}
		}
	}
	if failures == 0 {
		fmt.Fprintln(out, "davinci-cert: every certificate fully discharged; nothing to explain")
	}
	return 0
}

// crosscheck proves the selected certificates, installs them in a
// registry, and re-establishes agreement with the concrete verifier over
// the sweep programs plus randomized in-domain probes.
func crosscheck(out io.Writer, cfg buffer.Config, kernels []string, allPatterns bool, random int, seed int64) int {
	reg := sym.NewRegistry()
	reg.Add(proveAll(cfg, kernels, allPatterns)...)
	rep := sym.CrossCheck(reg, cfg, random, seed)
	fmt.Fprintln(out, rep.Summary())
	if len(rep.Divergences) > 0 {
		for _, d := range rep.Divergences {
			fmt.Fprintf(out, "DIVERGENCE: %s\n", d)
		}
		fmt.Fprintln(out, "davinci-cert: certificate admission diverges from concrete lint")
		return 1
	}
	fmt.Fprintln(out, "davinci-cert: ok — certificate admission agrees with concrete lint")
	return 0
}
