// Command davinci-sim runs a single pooling kernel on the simulated device
// with arbitrary parameters and prints the timing breakdown: total cycles,
// per-pipeline busy time and instruction counts — the hardware-counter
// view of §VI. With -trace it also exports the attributed schedule as
// Chrome trace-event JSON for Perfetto (https://ui.perfetto.dev), and with
// -gantt it prints an ASCII timeline plus the per-pipe cycle accounting
// (busy + attributed stalls + idle = makespan). With -opt N the plan is
// compiled through the static optimizer (internal/opt) at that level and
// the translation-validated rewrite report is printed; the result is
// still verified against the reference model. With -autosched the
// schedule search (internal/sched) picks the schedule instead of the
// hand-tuned default: the chosen ScheduleParams and the search summary
// are printed, and the oracle-predicted cycles can be compared against
// the simulated makespan on the line below.
//
// Example:
//
//	davinci-sim -op maxpool-fwd -variant im2col -h 147 -w 147 -c 64 -k 3 -s 2 -trace out.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/chip"
	"davinci/internal/faults"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/obs"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/ref"
	_ "davinci/internal/sched" // registers the autoscheduler -autosched dispatches to
	"davinci/internal/tensor"
	itrace "davinci/internal/trace"
)

func main() {
	op := flag.String("op", "maxpool-fwd", "operator: maxpool-fwd, maxpool-argmax, maxpool-bwd, avgpool-fwd, avgpool-bwd")
	variant := flag.String("variant", "im2col", "implementation variant (see -help text per op)")
	h := flag.Int("h", 35, "input height")
	w := flag.Int("w", 35, "input width")
	k := flag.Int("k", 3, "kernel size")
	s := flag.Int("s", 2, "stride")
	pad := flag.Int("pad", 0, "zero padding on every side")
	seed := flag.Int64("seed", 1, "input generator seed")
	ub := flag.Int("ub", buffer.DefaultUBSize, "Unified Buffer bytes")
	verify := flag.Bool("verify", true, "check the result against the reference model")
	trace := flag.String("trace", "", "write the attributed schedule to this file as Chrome trace-event JSON (Perfetto)")
	gantt := flag.Bool("gantt", false, "print an ASCII per-pipeline timeline and the cycle accounting")
	optLevel := flag.Int("opt", 0, "static optimizer level (0=off, 1=rewrites, 2=+rescheduling); prints the rewrite report")
	autosched := flag.Bool("autosched", false, "search the schedule space (internal/sched) instead of using the hand-tuned default; prints the chosen ScheduleParams and predicted vs simulated cycles")
	spans := flag.String("spans", "", "run on the multi-core chip with host-side span tracing and write the spans as JSONL to this file (- for stdout); supports maxpool-fwd and avgpool-fwd")
	cores := flag.Int("cores", 4, "AI cores in -spans chip mode")
	batch := flag.Int("n", 1, "batch size in -spans chip mode")
	channels := flag.Int("c", 64, "logical channels in -spans chip mode (c1 = ceil(c/16) tiles per image)")
	chaos := flag.Bool("chaos", false, "with -spans: inject seeded faults and run the resilient executor, so the trace shows retry/degrade causality")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-schedule seed for -chaos")
	chaosRate := flag.Float64("chaos-rate", 0.2, "per-(tile,attempt) fault probability for -chaos")
	chaosDegrade := flag.Bool("chaos-degrade", true, "with -chaos: degrade exhausted tiles to the host golden model instead of failing the run")
	flag.Parse()

	if *spans != "" {
		if err := runChipTraced(chipOptions{
			op: *op, variant: *variant, h: *h, w: *w, k: *k, s: *s, pad: *pad,
			seed: *seed, ub: *ub, verify: *verify, level: opt.Level(*optLevel),
			autosched: *autosched, spans: *spans, trace: *trace,
			cores: *cores, batch: *batch, channels: *channels,
			chaos: *chaos, chaosSeed: *chaosSeed, chaosRate: *chaosRate, chaosDegrade: *chaosDegrade,
		}); err != nil {
			fatal(err)
		}
		return
	}

	p := isa.ConvParams{Ih: *h, Iw: *w, Kh: *k, Kw: *k, Sh: *s, Sw: *s, Pt: *pad, Pb: *pad, Pl: *pad, Pr: *pad}
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	in := tensor.New(1, 1, *h, *w, tensor.C0)
	in.FillRandom(rng, 8)
	core := aicore.New(buffer.Config{UBSize: *ub}, nil)
	if *trace != "" || *gantt {
		core.Trace = &aicore.Trace{}
	}

	st, pl, err := dispatch(core, *op, *variant, in, p, *verify, opt.Level(*optLevel), *autosched)
	if err != nil {
		fatal(err)
	}
	oh, ow := p.OutDims()
	fmt.Printf("op=%s variant=%s input=(%d,%d,%d) kernel=(%d,%d) stride=(%d,%d) pad=%d output=(%d,%d)\n",
		*op, *variant, *h, *w, tensor.C0, *k, *k, *s, *s, *pad, oh, ow)
	fmt.Printf("cycles: %d\n", st.Cycles)
	if r := pl.Perf; r != nil {
		fmt.Printf("static bounds: %d (pipe occupancy) <= cycles <= %d (critical path)\n", r.BusyBound, r.CritPath)
	}
	if r := pl.Opt; r != nil {
		fmt.Printf("optimizer: %s\n", r.Summary())
		for _, rw := range r.Rewrites {
			fmt.Printf("  %s\n", rw)
		}
	}
	if a := pl.Auto; a != nil {
		fmt.Printf("autoschedule: %s\n", a.Summary())
		fmt.Printf("  schedule: %s\n", pl.Sched)
		fmt.Printf("  predicted %d cycles (oracle), simulated %d cycles\n", a.Cycles, st.Cycles)
	}
	fmt.Printf("instructions: %d\n", st.Instrs)
	fmt.Printf("global-memory traffic: %d bytes in, %d bytes out\n", st.BytesIn, st.BytesOut)
	for pipe := isa.PipeScalar; pipe < isa.NumPipes; pipe++ {
		if st.PipeInstrs[pipe] == 0 {
			continue
		}
		fmt.Printf("  %-6s %8d instrs  %10d busy cycles (%.1f%% of makespan)\n",
			pipe, st.PipeInstrs[pipe], st.PipeBusy[pipe],
			100*float64(st.PipeBusy[pipe])/float64(st.Cycles))
	}
	if core.Trace != nil {
		acct, err := obs.Account(core.Trace)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		acct.Format(os.Stdout)
		if *gantt {
			fmt.Println("\nschedule timeline:")
			core.Trace.Gantt(os.Stdout, 100)
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			if err := obs.WriteChromeTrace(f, core.Trace); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote Chrome trace (%d events' worth of schedule) to %s — open in https://ui.perfetto.dev\n",
				len(core.Trace.Entries), *trace)
		}
	}
}

// chipOptions parameterizes the -spans chip-mode run.
type chipOptions struct {
	op, variant            string
	h, w, k, s, pad        int
	seed                   int64
	ub                     int
	verify                 bool
	level                  opt.Level
	autosched              bool
	spans, trace           string
	cores, batch, channels int
	chaos                  bool
	chaosSeed              int64
	chaosRate              float64
	chaosDegrade           bool
}

// runChipTraced is the -spans path: the kernel runs on the multi-core
// chip with span tracing threaded through compile, (auto)scheduling and
// every tile attempt; the spans are exported as JSONL and, with -trace,
// merged with tile (0,0)'s cycle-accurate pipe schedule into one
// Perfetto file.
func runChipTraced(o chipOptions) error {
	p := isa.ConvParams{Ih: o.h, Iw: o.w, Kh: o.k, Kw: o.k, Sh: o.s, Sw: o.s, Pt: o.pad, Pb: o.pad, Pl: o.pad, Pr: o.pad}
	if err := p.Validate(); err != nil {
		return err
	}
	tracer := itrace.New()
	cfg := chip.Config{
		Cores:        o.cores,
		Buffers:      buffer.Config{UBSize: o.ub},
		Opt:          o.level,
		AutoSchedule: o.autosched,
		Trace:        tracer.Root(),
		CaptureTrace: o.trace != "",
	}
	if o.chaos {
		cfg.Resilience = chip.Resilience{
			Enabled: true,
			Injector: faults.New(faults.Config{
				Seed: o.chaosSeed,
				Rate: o.chaosRate,
				// Transient faults and bitflips fail deterministically per
				// attempt; the hang kinds would spend wall-clock watchdog
				// time for the same causal shape.
				Kinds: []faults.Kind{faults.KindTransient, faults.KindBitFlip},
				// Let every attempt fault, so a high -chaos-rate can
				// exhaust the retry budget and the trace shows degrade
				// spans (the default caps faults to the first attempt).
				MaxPerTile: 3,
			}, nil),
			Degrade:  o.chaosDegrade,
			Watchdog: 10 * time.Second,
		}
	}
	dev := chip.New(cfg)

	rng := rand.New(rand.NewSource(o.seed))
	c1 := tensor.C1Of(o.channels)
	in := tensor.New(o.batch, c1, o.h, o.w, tensor.C0)
	in.FillRandom(rng, 8)

	var (
		out    *tensor.Tensor
		st     *chip.Stats
		err    error
		refFor func(tile *tensor.Tensor) *tensor.Tensor
	)
	switch o.op {
	case "maxpool-fwd":
		out, st, err = dev.MaxPoolForward(o.variant, in, p)
		refFor = func(tile *tensor.Tensor) *tensor.Tensor { return ref.MaxPoolForward(tile, p) }
	case "avgpool-fwd":
		out, st, err = dev.AvgPoolForward(o.variant, in, p)
		refFor = func(tile *tensor.Tensor) *tensor.Tensor { return ref.AvgPoolForward(tile, p) }
	default:
		return fmt.Errorf("-spans chip mode supports maxpool-fwd and avgpool-fwd, not %q", o.op)
	}
	if err != nil {
		return err
	}
	if o.verify {
		for ni := 0; ni < o.batch; ni++ {
			for ci := 0; ci < c1; ci++ {
				want := refFor(tensor.SliceC1(in, ni, ci))
				got := tensor.SliceC1(out, ni, ci)
				if d := tensor.MaxAbsDiff(got, want); d != 0 {
					return fmt.Errorf("tile (%d,%d) diverges from reference (max diff %v)", ni, ci, d)
				}
			}
		}
		fmt.Printf("verified: all %d tiles match the reference model\n", o.batch*c1)
	}

	oh, ow := p.OutDims()
	fmt.Printf("op=%s variant=%s input=(%d,%d,%d,%d,%d) kernel=(%d,%d) stride=(%d,%d) pad=%d output=(%d,%d) cores=%d\n",
		o.op, o.variant, o.batch, c1, o.h, o.w, tensor.C0, o.k, o.k, o.s, o.s, o.pad, oh, ow, o.cores)
	fmt.Printf("chip cycles: %d over %d tiles\n", st.Cycles, st.Tiles)
	if len(st.Degraded) > 0 {
		fmt.Printf("degraded tiles (host golden model): %d\n", len(st.Degraded))
	}
	spans := tracer.Finished()
	if n := tracer.Active(); n != 0 {
		return fmt.Errorf("trace leak: %d span(s) still active after the run", n)
	}
	byName := map[string]int{}
	for _, sp := range spans {
		byName[sp.Name]++
	}
	fmt.Printf("spans: %d total", len(spans))
	for _, name := range []string{"chip_run", "plan_lookup", "plan_compile", "cert_admission", "opt_pipeline", "opt_pass", "sched_search", "sched_candidate", "tile_exec", "tile_degrade"} {
		if byName[name] > 0 {
			fmt.Printf("  %s=%d", name, byName[name])
		}
	}
	fmt.Println()

	if err := writeSpans(o.spans, spans); err != nil {
		return err
	}
	if o.spans != "-" {
		fmt.Printf("wrote %d spans to %s\n", len(spans), o.spans)
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTraceWithSpans(f, st.TileTrace, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote merged Chrome trace (tile (0,0) pipe schedule + %d host spans) to %s — open in https://ui.perfetto.dev\n",
			len(spans), o.trace)
	}
	return nil
}

// writeSpans dumps spans as deterministic JSONL.
func writeSpans(path string, spans []itrace.Span) error {
	if path == "-" {
		return itrace.WriteJSONL(os.Stdout, spans)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := itrace.WriteJSONL(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dispatch compiles the requested kernel once through the Plan API,
// replays it on the core, and verifies the outputs against the
// reference model.
func dispatch(core *aicore.Core, op, variant string, in *tensor.Tensor, p isa.ConvParams, verify bool, level opt.Level, autosched bool) (*aicore.Stats, *ops.Plan, error) {
	check := func(got, want *tensor.Tensor, what string) error {
		if !verify {
			return nil
		}
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			return fmt.Errorf("%s diverges from reference (max diff %v)", what, d)
		}
		fmt.Printf("verified: %s matches the reference model\n", what)
		return nil
	}
	spec := ops.SpecFor(core)
	spec.Opt = level
	spec.AutoSchedule = autosched
	var (
		pl     *ops.Plan
		err    error
		inputs []*tensor.Tensor
		refs   []*tensor.Tensor
		whats  []string
	)
	switch op {
	case "maxpool-fwd":
		if pl, err = ops.PlanMaxPoolForward(variant, spec, p); err != nil {
			return nil, nil, err
		}
		inputs = []*tensor.Tensor{in}
		refs, whats = []*tensor.Tensor{ref.MaxPoolForward(in, p)}, []string{"output"}
	case "maxpool-argmax":
		if pl, err = ops.PlanMaxPoolForwardArgmax(variant, spec, p); err != nil {
			return nil, nil, err
		}
		inputs = []*tensor.Tensor{in}
		refs = []*tensor.Tensor{ref.MaxPoolForward(in, p), ref.ArgmaxMask(in, p)}
		whats = []string{"output", "argmax mask"}
	case "maxpool-bwd":
		if pl, err = ops.PlanMaxPoolBackward(variant, spec, p); err != nil {
			return nil, nil, err
		}
		mask := ref.ArgmaxMask(in, p)
		grad := intGradient(p)
		inputs = []*tensor.Tensor{mask, grad}
		refs = []*tensor.Tensor{ref.MaxPoolBackward(mask, grad, p, p.Ih, p.Iw)}
		whats = []string{"gradient"}
	case "avgpool-fwd":
		if pl, err = ops.PlanAvgPoolForward(variant, spec, p); err != nil {
			return nil, nil, err
		}
		inputs = []*tensor.Tensor{in}
		refs, whats = []*tensor.Tensor{ref.AvgPoolForward(in, p)}, []string{"output"}
	case "avgpool-bwd":
		useCol2im := variant == "col2im"
		if !useCol2im && variant != "standard" {
			return nil, nil, fmt.Errorf("avgpool-bwd variants: standard, col2im")
		}
		if pl, err = ops.PlanAvgPoolBackward(spec, p, useCol2im); err != nil {
			return nil, nil, err
		}
		grad := intGradient(p)
		inputs = []*tensor.Tensor{grad}
		refs = []*tensor.Tensor{ref.AvgPoolBackward(grad, p, p.Ih, p.Iw)}
		whats = []string{"gradient"}
	default:
		return nil, nil, fmt.Errorf("unknown op %q", op)
	}
	outs, st, err := pl.Run(core, inputs...)
	if err != nil {
		return nil, nil, err
	}
	for i, want := range refs {
		if err := check(outs[i], want, whats[i]); err != nil {
			return nil, nil, err
		}
	}
	return st, pl, nil
}

// intGradient builds a small-integer-valued gradient tensor. Integer
// values keep Float16 accumulation exact, so the backward kernels verify
// bit-identically against the reference regardless of band boundaries
// (Float16 addition is not associative; schedules with different band
// splits legitimately differ by ULPs on arbitrary values, on real hardware
// as much as here).
func intGradient(p isa.ConvParams) *tensor.Tensor {
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < grad.Len(); i++ {
		grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(8))))
	}
	return grad
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "davinci-sim: %v\n", err)
	os.Exit(1)
}
