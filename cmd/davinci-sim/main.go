// Command davinci-sim runs a single pooling kernel on the simulated device
// with arbitrary parameters and prints the timing breakdown: total cycles,
// per-pipeline busy time and instruction counts — the hardware-counter
// view of §VI.
//
// Example:
//
//	davinci-sim -op maxpool-fwd -variant im2col -h 147 -w 147 -c 64 -k 3 -s 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"davinci/internal/aicore"
	"davinci/internal/buffer"
	"davinci/internal/fp16"
	"davinci/internal/isa"
	"davinci/internal/ops"
	"davinci/internal/ref"
	"davinci/internal/tensor"
)

func main() {
	op := flag.String("op", "maxpool-fwd", "operator: maxpool-fwd, maxpool-argmax, maxpool-bwd, avgpool-fwd, avgpool-bwd")
	variant := flag.String("variant", "im2col", "implementation variant (see -help text per op)")
	h := flag.Int("h", 35, "input height")
	w := flag.Int("w", 35, "input width")
	k := flag.Int("k", 3, "kernel size")
	s := flag.Int("s", 2, "stride")
	pad := flag.Int("pad", 0, "zero padding on every side")
	seed := flag.Int64("seed", 1, "input generator seed")
	ub := flag.Int("ub", buffer.DefaultUBSize, "Unified Buffer bytes")
	verify := flag.Bool("verify", true, "check the result against the reference model")
	trace := flag.Bool("trace", false, "print a per-pipeline timeline of the schedule")
	flag.Parse()

	p := isa.ConvParams{Ih: *h, Iw: *w, Kh: *k, Kw: *k, Sh: *s, Sw: *s, Pt: *pad, Pb: *pad, Pl: *pad, Pr: *pad}
	if err := p.Validate(); err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	in := tensor.New(1, 1, *h, *w, tensor.C0)
	in.FillRandom(rng, 8)
	core := aicore.New(buffer.Config{UBSize: *ub}, nil)
	if *trace {
		core.Trace = &aicore.Trace{}
	}

	st, err := dispatch(core, *op, *variant, in, p, *verify)
	if err != nil {
		fatal(err)
	}
	oh, ow := p.OutDims()
	fmt.Printf("op=%s variant=%s input=(%d,%d,%d) kernel=(%d,%d) stride=(%d,%d) pad=%d output=(%d,%d)\n",
		*op, *variant, *h, *w, tensor.C0, *k, *k, *s, *s, *pad, oh, ow)
	fmt.Printf("cycles: %d\n", st.Cycles)
	fmt.Printf("instructions: %d\n", st.Instrs)
	fmt.Printf("global-memory traffic: %d bytes in, %d bytes out\n", st.BytesIn, st.BytesOut)
	for pipe := isa.PipeScalar; pipe < isa.NumPipes; pipe++ {
		if st.PipeInstrs[pipe] == 0 {
			continue
		}
		fmt.Printf("  %-6s %8d instrs  %10d busy cycles (%.1f%% of makespan)\n",
			pipe, st.PipeInstrs[pipe], st.PipeBusy[pipe],
			100*float64(st.PipeBusy[pipe])/float64(st.Cycles))
	}
	if core.Trace != nil {
		fmt.Println("\nschedule timeline:")
		core.Trace.Gantt(os.Stdout, 100)
	}
}

func dispatch(core *aicore.Core, op, variant string, in *tensor.Tensor, p isa.ConvParams, verify bool) (*aicore.Stats, error) {
	check := func(got, want *tensor.Tensor, what string) error {
		if !verify {
			return nil
		}
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			return fmt.Errorf("%s diverges from reference (max diff %v)", what, d)
		}
		fmt.Printf("verified: %s matches the reference model\n", what)
		return nil
	}
	switch op {
	case "maxpool-fwd":
		fn, ok := ops.MaxForward[variant]
		if !ok {
			return nil, fmt.Errorf("maxpool-fwd variants: standard, im2col, expansion, xysplit")
		}
		out, st, err := fn(core, in, p)
		if err != nil {
			return nil, err
		}
		return st, check(out, ref.MaxPoolForward(in, p), "output")
	case "maxpool-argmax":
		fn, ok := ops.MaxForwardArgmax[variant]
		if !ok {
			return nil, fmt.Errorf("maxpool-argmax variants: standard, im2col")
		}
		out, mask, st, err := fn(core, in, p)
		if err != nil {
			return nil, err
		}
		if err := check(out, ref.MaxPoolForward(in, p), "output"); err != nil {
			return nil, err
		}
		return st, check(mask, ref.ArgmaxMask(in, p), "argmax mask")
	case "maxpool-bwd":
		fn, ok := ops.MaxBackward[variant]
		if !ok {
			return nil, fmt.Errorf("maxpool-bwd variants: standard, col2im")
		}
		mask := ref.ArgmaxMask(in, p)
		grad := intGradient(p)
		out, st, err := fn(core, mask, grad, p)
		if err != nil {
			return nil, err
		}
		return st, check(out, ref.MaxPoolBackward(mask, grad, p, p.Ih, p.Iw), "gradient")
	case "avgpool-fwd":
		fn, ok := ops.AvgForward[variant]
		if !ok {
			return nil, fmt.Errorf("avgpool-fwd variants: standard, im2col")
		}
		out, st, err := fn(core, in, p)
		if err != nil {
			return nil, err
		}
		return st, check(out, ref.AvgPoolForward(in, p), "output")
	case "avgpool-bwd":
		useCol2im := variant == "col2im"
		if !useCol2im && variant != "standard" {
			return nil, fmt.Errorf("avgpool-bwd variants: standard, col2im")
		}
		grad := intGradient(p)
		out, st, err := ops.AvgPoolBackward(core, grad, p, useCol2im)
		if err != nil {
			return nil, err
		}
		return st, check(out, ref.AvgPoolBackward(grad, p, p.Ih, p.Iw), "gradient")
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}

// intGradient builds a small-integer-valued gradient tensor. Integer
// values keep Float16 accumulation exact, so the backward kernels verify
// bit-identically against the reference regardless of band boundaries
// (Float16 addition is not associative; schedules with different band
// splits legitimately differ by ULPs on arbitrary values, on real hardware
// as much as here).
func intGradient(p isa.ConvParams) *tensor.Tensor {
	oh, ow := p.OutDims()
	grad := tensor.New(1, 1, oh, ow, tensor.C0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < grad.Len(); i++ {
		grad.SetFlat(i, fp16.FromFloat64(float64(rng.Intn(8))))
	}
	return grad
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "davinci-sim: %v\n", err)
	os.Exit(1)
}
