// Command davinci-layout visualizes the Im2Col transform the way Fig. 5 of
// the paper does: it prints the input patch grid and the fractals an
// Im2Col load sequence produces, labelling each row with its source
// coordinates (or PAD for zero-padding positions).
//
// With -mode program it prints a compiled kernel's instruction stream
// instead — the program the layout feeds — and with -opt N the stream
// after the static optimizer (internal/opt), alongside its
// translation-validated rewrite report.
//
// With -mode schedule it runs the schedule search (internal/sched) for
// the kernel named by -kernel and dumps the candidate frontier: every
// ScheduleParams the enumerator tried, its static makespan bounds, the
// oracle-confirmed cycles where the search paid for a simulation, and
// which candidate won.
//
// Example (the exact Fig. 5 configuration):
//
//	davinci-layout -h 8 -w 8 -k 2 -s 2
//	davinci-layout -h 8 -w 8 -k 2 -s 2 -mode program -opt 2
//	davinci-layout -h 112 -w 112 -k 3 -s 2 -mode schedule -kernel maxpool_fwd/standard
package main

import (
	"flag"
	"fmt"
	"os"

	"davinci/internal/isa"
	"davinci/internal/ops"
	"davinci/internal/opt"
	"davinci/internal/sched"
	"davinci/internal/scu"
)

func main() {
	h := flag.Int("h", 8, "input height")
	w := flag.Int("w", 8, "input width")
	k := flag.Int("k", 2, "kernel size")
	s := flag.Int("s", 2, "stride")
	pad := flag.Int("pad", 0, "zero padding on every side")
	maxFractals := flag.Int("fractals", 8, "maximum fractals to print")
	mode := flag.String("mode", "im2col", "im2col (Fig. 5 load map), col2im (Fig. 6 scatter map), program (compiled instruction stream) or schedule (autoscheduler candidate frontier)")
	variant := flag.String("variant", "im2col", "with -mode program: the maxpool-forward variant to compile")
	optLevel := flag.Int("opt", 0, "with -mode program: static optimizer level (0=off, 1=rewrites, 2=+rescheduling)")
	kernel := flag.String("kernel", "maxpool_fwd/standard", "with -mode schedule: the family/variant kernel to search")
	flag.Parse()

	p := isa.ConvParams{Ih: *h, Iw: *w, Kh: *k, Kw: *k, Sh: *s, Sw: *s, Pt: *pad, Pb: *pad, Pl: *pad, Pr: *pad}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "davinci-layout: %v\n", err)
		os.Exit(1)
	}
	if *mode == "program" {
		if err := printProgram(p, *variant, opt.Level(*optLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-layout: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mode == "schedule" {
		if err := printSchedule(p, *kernel); err != nil {
			fmt.Fprintf(os.Stderr, "davinci-layout: %v\n", err)
			os.Exit(1)
		}
		return
	}
	oh, ow := p.OutDims()
	fmt.Printf("input (%d,%d)  kernel (%d,%d)  stride (%d,%d)  padding %d\n", *h, *w, *k, *k, *s, *s, *pad)
	fmt.Printf("patches: %dx%d = %d  -> %d fractals per (c1,xk,yk), %d rows zero tail\n\n",
		oh, ow, p.Patches(), p.Fractals(), p.PaddedPatches()-p.Patches())

	fmt.Println("patch grid (top-left input coordinate of each patch):")
	for i := 0; i < oh; i++ {
		for j := 0; j < ow; j++ {
			ph, pw := scu.PatchOrigin(p, i*ow+j)
			fmt.Printf("(%3d,%3d) ", ph, pw)
		}
		fmt.Println()
	}
	fmt.Println()

	if *mode == "col2im" {
		printCol2im(p, oh, ow)
		return
	}
	fmt.Printf("Im2Col load sequence, repeat mode 1, loop order [c1,(xk,yk),(x,y)] (§III-C):\n")
	printed := 0
	for xk := 0; xk < p.Kh && printed < *maxFractals; xk++ {
		for yk := 0; yk < p.Kw && printed < *maxFractals; yk++ {
			for f := 0; f < p.Fractals() && printed < *maxFractals; f++ {
				fmt.Printf("fractal %2d  (xk,yk)=(%d,%d) patches %d..%d:\n",
					printed, xk, yk, f*isa.FractalPatches, f*isa.FractalPatches+isa.FractalPatches-1)
				for row := 0; row < isa.FractalPatches; row++ {
					patch := f*isa.FractalPatches + row
					if patch >= p.Patches() {
						fmt.Printf("  row %2d: ZERO (fractal tail)\n", row)
						continue
					}
					sh, sw, isPad := scu.SourceCoord(p, patch, xk, yk)
					if isPad {
						fmt.Printf("  row %2d: patch %3d -> PAD (zero)\n", row, patch)
					} else {
						fmt.Printf("  row %2d: patch %3d -> in[%d,%d][0:%d]\n", row, patch, sh, sw, isa.FractalC0)
					}
				}
				printed++
			}
		}
	}
	if total := p.Kh * p.Kw * p.Fractals(); printed < total {
		fmt.Printf("... %d more fractals (raise -fractals to print them)\n", total-printed)
	}
}

// printProgram dumps a compiled maxpool-forward plan's instruction stream
// with per-instruction pipe assignments — the program the Fig. 5 layout
// feeds — plus the optimizer's rewrite report when a level is set.
func printProgram(p isa.ConvParams, variant string, level opt.Level) error {
	pl, err := ops.PlanMaxPoolForward(variant, ops.Spec{Opt: level}, p)
	if err != nil {
		return err
	}
	fmt.Printf("program %s: %d instructions\n", pl.Prog.Name, len(pl.Prog.Instrs))
	if r := pl.Opt; r != nil {
		fmt.Printf("optimizer: %s\n", r.Summary())
		for _, rw := range r.Rewrites {
			fmt.Printf("  %s\n", rw)
		}
	}
	fmt.Println()
	for i, in := range pl.Prog.Instrs {
		fmt.Printf("%4d  %-6s %s\n", i, in.Pipe(), in)
	}
	return nil
}

// printSchedule runs the autoscheduler for one kernel and dumps the
// candidate frontier: the hand-tuned default first, then every valid
// candidate by ascending critical path, then the candidates the
// enumerator proposed but the lowering rejected as outside the kernel's
// schedule space.
func printSchedule(p isa.ConvParams, kernel string) error {
	res, err := sched.Search(kernel, ops.Spec{}, p, sched.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("schedule frontier for %s on input (%d,%d) kernel (%d,%d) stride (%d,%d):\n",
		res.Kernel, p.Ih, p.Iw, p.Kh, p.Kw, p.Sh, p.Sw)
	fmt.Printf("%s\n\n", res.Report.Summary())
	fmt.Printf("%-44s %10s %10s %10s  %s\n", "schedule", "critpath", "busybound", "cycles", "status")
	for _, c := range res.Candidates {
		if c.Invalid != "" {
			fmt.Printf("%-44s %10s %10s %10s  rejected: %s\n", c.Params, "-", "-", "-", c.Invalid)
			continue
		}
		status := "bounded"
		switch {
		case res.Report.Accepted && c.Resolved == res.Report.Params:
			status = "ACCEPTED"
		case c.Default:
			status = "default"
		case c.Confirmed:
			status = "confirmed"
		}
		cycles := "-"
		if c.Confirmed {
			cycles = fmt.Sprintf("%d", c.Cycles)
		}
		fmt.Printf("%-44s %10d %10d %10s  %s\n", c.Resolved, c.CritPath, c.BusyBound, cycles, status)
	}
	return nil
}

// printCol2im renders the Fig. 6 view: for every input-image cell, the
// number of (patch, xk, yk) contributions Col2Im sums into it. Cells with
// a count above 1 are where overlapping patches accumulate gradients.
func printCol2im(p isa.ConvParams, oh, ow int) {
	counts := make([][]int, p.Ih)
	for i := range counts {
		counts[i] = make([]int, p.Iw)
	}
	discarded := 0
	for pt := 0; pt < oh*ow; pt++ {
		for xk := 0; xk < p.Kh; xk++ {
			for yk := 0; yk < p.Kw; yk++ {
				h, w, pad := scu.SourceCoord(p, pt, xk, yk)
				if pad {
					discarded++
					continue
				}
				counts[h][w]++
			}
		}
	}
	fmt.Println("Col2Im scatter map (contributions summed per input cell, §III-D):")
	for h := 0; h < p.Ih; h++ {
		for w := 0; w < p.Iw; w++ {
			fmt.Printf("%3d", counts[h][w])
		}
		fmt.Println()
	}
	fmt.Printf("\n%d contributions fall in the zero padding and are discarded\n", discarded)
	fmt.Println("(the output must be zero-initialized before the first Col2Im issue)")
}
