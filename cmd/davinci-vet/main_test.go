package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, src, pkgDir string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "synthetic.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return checkFile(fset, file, pkgDir)
}

func wantFinding(t *testing.T, fs []finding, substr string) {
	t.Helper()
	for _, f := range fs {
		if strings.Contains(f.msg, substr) {
			return
		}
	}
	t.Errorf("no finding containing %q in %v", substr, fs)
}

func TestSealedProgramMutationFlagged(t *testing.T) {
	src := `package x
func f(pl *Plan) {
	pl.Prog.Emit(nil)
	pl.Prog.EmitCopy(0, 0, 0, 0, 0)
	pl.Prog.Instrs = nil
	pl.Prog.Instrs = append(pl.Prog.Instrs, nil)
}`
	fs := check(t, src, "internal/ops")
	if len(fs) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(fs), fs)
	}
	wantFinding(t, fs, "emit into a sealed program (pl.Prog.Emit)")
	wantFinding(t, fs, "write to a sealed program's instruction stream")
}

func TestOptPackageExemptFromMutationRule(t *testing.T) {
	src := `package opt
func f(res *Result) {
	res.Prog.Emit(nil)
	res.Prog.Instrs = nil
}`
	for _, dir := range []string{"internal/opt", "internal/opt/sub"} {
		if fs := check(t, src, dir); len(fs) != 0 {
			t.Errorf("%s: got findings %v, want none", dir, fs)
		}
	}
}

func TestSealedProgramReadsAllowed(t *testing.T) {
	src := `package x
func f(pl *Plan) {
	n := len(pl.Prog.Instrs)
	for _, in := range pl.Prog.Instrs {
		_ = in
	}
	_ = n
	synced := AutoSync(pl.Prog)
	_ = synced
	local := New("p")
	local.Emit(nil)
}`
	if fs := check(t, src, "cmd/davinci-lint"); len(fs) != 0 {
		t.Errorf("got findings %v, want none", fs)
	}
}

func TestNonCanonicalLabelKeyFlagged(t *testing.T) {
	src := `package x
func f(r *Registry) {
	r.Counter("chip_tiles", "flavor", "mint").Inc()
	r.Gauge("bench_cycles", "impl", "a", "shade", "b").Set(1)
	r.Histogram("sweep_program_cycles", nil, "weird", "k").Observe(2)
}`
	fs := check(t, src, "internal/chip")
	if len(fs) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(fs), fs)
	}
	wantFinding(t, fs, `non-canonical metric label key "flavor"`)
	wantFinding(t, fs, `non-canonical metric label key "shade"`)
	wantFinding(t, fs, `non-canonical metric label key "weird"`)
}

func TestNonCanonicalMetricNameFlagged(t *testing.T) {
	// The name rule fires even with no labels at all, and even when the
	// labels are spread dynamically.
	src := `package x
func f(r *Registry, kv []string) {
	r.Counter("reqs").Inc()
	r.Gauge("depth", kv...).Set(1)
	r.Histogram("lat", nil).Observe(2)
	r.Counter("sched_candidates").Inc()
}`
	fs := check(t, src, "internal/chip")
	if len(fs) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(fs), fs)
	}
	wantFinding(t, fs, `non-canonical metric name "reqs"`)
	wantFinding(t, fs, `non-canonical metric name "depth"`)
	wantFinding(t, fs, `non-canonical metric name "lat"`)
}

func TestCanonicalLabelsPass(t *testing.T) {
	src := `package x
func f(r *Registry) {
	r.Counter("opt_rewrites", "pass", name).Add(1)
	r.Counter("faults_injected", "kind", k.String()).Inc()
	r.Gauge("bench_cycles", "experiment", "sweep", "input", input, "impl", impl).Set(c)
	r.Histogram("sweep_program_cycles", nil).Observe(c)
	r.Counter("plan_cache_hits").Inc()
}`
	if fs := check(t, src, "internal/bench"); len(fs) != 0 {
		t.Errorf("got findings %v, want none", fs)
	}
}

func TestOddLabelListFlagged(t *testing.T) {
	src := `package x
func f(r *Registry) {
	r.Counter("chip_tiles", "kind").Inc()
}`
	fs := check(t, src, "internal/chip")
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	wantFinding(t, fs, "odd metric label list")
}

func TestDynamicCallsSkipped(t *testing.T) {
	src := `package x
func f(r *Registry, name string, kv []string) {
	r.Counter(name, "flavor", "mint").Inc()
	r.Counter("chip_tiles", kv...).Inc()
	r.Counter("chip_tiles", key, "v").Inc()
}`
	if fs := check(t, src, "internal/chip"); len(fs) != 0 {
		t.Errorf("got findings %v, want none", fs)
	}
}

func TestNonCanonicalSpanNameFlagged(t *testing.T) {
	src := `package x
func f(tc Ctx) {
	sp := tc.StartSpan("request")
	sp2 := tc.StartSpan("tile_exec", "n", "0", "c1")
	sp3 := tc.StartSpan("chip_run", "kernel", k)
	_, _, _ = sp, sp2, sp3
}`
	fs := check(t, src, "internal/chip")
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(fs), fs)
	}
	wantFinding(t, fs, `non-canonical span name "request"`)
	wantFinding(t, fs, `odd span attribute list on StartSpan "tile_exec"`)
}

func TestDynamicSpanNameSkipped(t *testing.T) {
	src := `package x
func f(tc Ctx, name string, kv []string) {
	sp := tc.StartSpan(name)
	sp2 := tc.StartSpan("plan_lookup", kv...)
	_, _ = sp, sp2
}`
	if fs := check(t, src, "internal/ops"); len(fs) != 0 {
		t.Errorf("got findings %v, want none", fs)
	}
}

// TestVetRepo runs the checker over the real repository tree: the
// committed code must be clean, and the walk must skip testdata.
func TestVetRepo(t *testing.T) {
	findings, err := vet("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
