// Command davinci-vet is the repo's custom static checker, run in CI next
// to go vet. It is stdlib-only (go/parser + go/ast — no x/tools
// dependency) and enforces two repo invariants the ordinary type system
// cannot:
//
//  1. Sealed programs are immutable. A compiled plan's instruction stream
//     (ops.Plan.Prog) is shared by the plan cache, replayed concurrently,
//     and analyzed by lint/perf at seal time — mutating it afterwards
//     silently invalidates every cached analysis. Only internal/opt, which
//     rewrites programs before they are sealed and re-proves them through
//     the translation-validation gate, may touch an instruction stream
//     reached through a .Prog field: everywhere else, calls like
//     x.Prog.Emit(...) or writes to x.Prog.Instrs are errors.
//
//  2. Metrics come from the canonical vocabulary. Every literal metric
//     name passed to obs Counter/Gauge/Histogram constructors must be in
//     obs.CanonicalMetricNames, every literal label key in
//     obs.CanonicalLabelKeys, and label lists must have even length —
//     ad-hoc names and keys fracture the BENCH_<rev>.json join surface.
//     Span names are held to the same bar: every literal name passed to
//     StartSpan must be in obs.CanonicalSpanNames and the trailing
//     attribute list must have even length, so the span taxonomy in the
//     JSONL/Perfetto exports stays closed and joinable.
//
//  3. Kernel families are certified. Every family (and every lowering
//     variant spelled in the literal) of the ops dispatch table
//     (kernelFamilies in internal/ops/plan.go) must have an entry in the
//     certification catalogue (sym.CertifiedFamilies in
//     internal/lint/sym/families.go), and every certified family must
//     still exist in the dispatch table — a new kernel registered without
//     certification coverage, or a stale certification entry, fails vet.
//     The check compares the two composite literals cross-file and is
//     skipped when either file or variable is absent.
//
// Usage:
//
//	go run ./cmd/davinci-vet ./...
//
// Arguments are directories or "dir/..." patterns relative to the module
// root; findings print as file:line: message and any finding exits 1.
// Test files and testdata directories are exempt from both rules.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"davinci/internal/obs"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := vet(".", args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "davinci-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// finding is one diagnostic, formatted file:line: message.
type finding struct {
	pos token.Position
	msg string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.pos.Filename, f.pos.Line, f.msg)
}

// vet expands the argument patterns under root and checks every non-test
// Go file found, returning the findings sorted in walk order.
func vet(root string, patterns []string) ([]finding, error) {
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var findings []finding
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return nil, err
			}
			findings = append(findings, checkFile(fset, file, filepath.ToSlash(rel))...)
		}
	}
	findings = append(findings, checkCertCoverage(root, fset)...)
	return findings, nil
}

// checkCertCoverage is rule 3: the ops kernel dispatch table and the
// certification catalogue must agree, family by family (and for the
// variants spelled in the dispatch literal, variant by variant — entries
// registered dynamically in init functions are invisible to this check
// and exempt). Returns nothing when either side is absent, so the rule
// degrades gracefully in partial checkouts.
func checkCertCoverage(root string, fset *token.FileSet) []finding {
	families, ok := mapLiteral(fset, filepath.Join(root, "internal", "ops", "plan.go"), "kernelFamilies")
	if !ok {
		return nil
	}
	certified, ok := mapLiteral(fset, filepath.Join(root, "internal", "lint", "sym", "families.go"), "CertifiedFamilies")
	if !ok {
		return nil
	}
	var findings []finding
	for _, fam := range families {
		cert, covered := certified[fam.name]
		if !covered {
			findings = append(findings, finding{pos: fam.pos, msg: fmt.Sprintf(
				"kernel family %q has no certification entry (add it to sym.CertifiedFamilies or document why it cannot be certified)", fam.name)})
			continue
		}
		for _, v := range fam.elems {
			if !cert.elemSet[v.name] {
				findings = append(findings, finding{pos: v.pos, msg: fmt.Sprintf(
					"kernel variant %q of family %q has no certification entry in sym.CertifiedFamilies", v.name, fam.name)})
			}
		}
	}
	famSet := map[string]bool{}
	for _, fam := range families {
		famSet[fam.name] = true
	}
	for _, cert := range certified {
		if !famSet[cert.name] {
			findings = append(findings, finding{pos: cert.pos, msg: fmt.Sprintf(
				"certified family %q is not in the ops kernel dispatch table (stale sym.CertifiedFamilies entry)", cert.name)})
		}
	}
	return findings
}

// mapEntry is one key of a parsed map composite literal, with any
// string-literal elements of its value (map keys or slice elements).
type mapEntry struct {
	name    string
	pos     token.Position
	elems   []mapEntry
	elemSet map[string]bool
}

// mapLiteral parses path and extracts the top-level map composite literal
// assigned to the named package variable: its string keys, and per key the
// string literals inside the value (nested map keys, or string slice
// elements). ok is false when the file or the variable is missing.
func mapLiteral(fset *token.FileSet, path, varName string) (map[string]mapEntry, bool) {
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, false
	}
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.VAR {
			continue
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || vs.Names[0].Name != varName || len(vs.Values) != 1 {
				continue
			}
			lit, ok := vs.Values[0].(*ast.CompositeLit)
			if !ok {
				continue
			}
			out := map[string]mapEntry{}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := stringLit(kv.Key)
				if !ok {
					continue
				}
				entry := mapEntry{name: key, pos: fset.Position(kv.Key.Pos()), elemSet: map[string]bool{}}
				if inner, ok := kv.Value.(*ast.CompositeLit); ok {
					for _, iel := range inner.Elts {
						var keyExpr ast.Expr
						if ikv, ok := iel.(*ast.KeyValueExpr); ok {
							keyExpr = ikv.Key
						} else {
							keyExpr = iel
						}
						if s, ok := stringLit(keyExpr); ok {
							entry.elems = append(entry.elems, mapEntry{name: s, pos: fset.Position(keyExpr.Pos())})
							entry.elemSet[s] = true
						}
					}
				}
				out[key] = entry
			}
			return out, true
		}
	}
	return nil, false
}

// expand resolves "dir/..." patterns to the list of directories to check,
// skipping testdata, vendor and dot-directories.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if strings.HasSuffix(pat, "/...") {
			base, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base = filepath.Join(root, base)
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return fs.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// checkFile runs both rules over one parsed file. pkgDir is the file's
// directory relative to the module root ("internal/opt", "cmd/davinci-sim").
func checkFile(fset *token.FileSet, file *ast.File, pkgDir string) []finding {
	var findings []finding
	report := func(n ast.Node, format string, args ...any) {
		findings = append(findings, finding{pos: fset.Position(n.Pos()), msg: fmt.Sprintf(format, args...)})
	}
	optPkg := pkgDir == "internal/opt" || strings.HasPrefix(pkgDir, "internal/opt/")
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if optPkg {
				return true
			}
			for _, lhs := range n.Lhs {
				if isProgField(lhs, "Instrs") {
					report(lhs, "write to a sealed program's instruction stream (%s); only internal/opt may rewrite programs", render(lhs))
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !optPkg && strings.HasPrefix(sel.Sel.Name, "Emit") && isProgField(sel.X, "Prog") {
				report(n, "emit into a sealed program (%s.%s); only internal/opt may rewrite programs", render(sel.X), sel.Sel.Name)
			}
			checkLabels(n, sel, report)
			checkSpan(n, sel, report)
		}
		return true
	})
	return findings
}

// isProgField reports whether expr is a selector ending in .<field> whose
// receiver is itself a field access — x.Prog.Instrs, pl.Prog — i.e. a
// program reached through a struct field rather than a local *cce.Program
// still being built.
func isProgField(expr ast.Expr, field string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if field == "Prog" {
		return sel.Sel.Name == "Prog"
	}
	return sel.Sel.Name == field && isProgField(sel.X, "Prog")
}

// checkLabels enforces the canonical metric vocabulary on
// Counter/Gauge/Histogram constructor calls: the name check runs on every
// call with a literal first argument (even when the labels are spread
// dynamically), the label checks only where the keys are literal. Calls
// with a computed name are skipped — they are some other type's method,
// or dynamic in a way this tool cannot judge.
func checkLabels(call *ast.CallExpr, sel *ast.SelectorExpr, report func(ast.Node, string, ...any)) {
	var labelStart int
	switch sel.Sel.Name {
	case "Counter", "Gauge":
		labelStart = 1
	case "Histogram":
		labelStart = 2
	default:
		return
	}
	if len(call.Args) < labelStart {
		return
	}
	name, ok := stringLit(call.Args[0])
	if !ok {
		return
	}
	if !obs.CanonicalMetricNames[name] {
		report(call.Args[0], "non-canonical metric name %q on %s (add it to obs.CanonicalMetricNames deliberately, not ad hoc)",
			name, sel.Sel.Name)
	}
	if len(call.Args) <= labelStart || call.Ellipsis.IsValid() {
		return
	}
	labels := call.Args[labelStart:]
	if len(labels)%2 != 0 {
		report(call, "odd metric label list on %s %q: want key, value pairs", sel.Sel.Name, name)
		return
	}
	for i := 0; i < len(labels); i += 2 {
		key, ok := stringLit(labels[i])
		if !ok {
			continue
		}
		if !obs.CanonicalLabelKeys[key] {
			report(labels[i], "non-canonical metric label key %q on %s %q (canonical: %s)",
				key, sel.Sel.Name, name, canonicalList())
		}
	}
}

// checkSpan enforces the canonical span vocabulary on StartSpan calls:
// a literal span name must be in obs.CanonicalSpanNames and the trailing
// key/value attribute list must have even length. Computed names are
// skipped, same as for metrics.
func checkSpan(call *ast.CallExpr, sel *ast.SelectorExpr, report func(ast.Node, string, ...any)) {
	if sel.Sel.Name != "StartSpan" || len(call.Args) < 1 {
		return
	}
	name, ok := stringLit(call.Args[0])
	if !ok {
		return
	}
	if !obs.CanonicalSpanNames[name] {
		report(call.Args[0], "non-canonical span name %q on StartSpan (add it to obs.CanonicalSpanNames deliberately, not ad hoc)", name)
	}
	if !call.Ellipsis.IsValid() && len(call.Args[1:])%2 != 0 {
		report(call, "odd span attribute list on StartSpan %q: want key, value pairs", name)
	}
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func canonicalList() string {
	keys := make([]string, 0, len(obs.CanonicalLabelKeys))
	for k := range obs.CanonicalLabelKeys {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ", ")
}

// render prints a selector chain for diagnostics (best effort).
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	}
	return "<expr>"
}
